// SSE2 kernel table. Bit-exact with the scalar table by construction:
//
//  * SAD uses psadbw — an exact integer reduction.
//  * The DCT/IDCT vectorize across the 8 *outputs* of each butterfly-free
//    stage (4 lanes at a time) while each lane accumulates its inner sum in
//    the same sequential order as the scalar loops, using only IEEE-exact
//    _mm_mul_ps/_mm_add_ps (SSE2 has no FMA, and this TU is built with
//    -ffp-contract=off like the scalar one).
//  * Rounding replicates std::lround (half away from zero) via
//    truncate + exact-fraction compare: for |v| < 2^23 both v and trunc(v)
//    are exactly representable and their difference is exact, so the
//    |frac| >= 0.5 test reproduces lround on the true float value.
//
// Compiled only where SSE2 exists; elsewhere the accessor returns nullptr
// and the dispatcher falls back to scalar.
#include "common/simd/kernels_internal.h"

#if defined(__SSE2__) || defined(__x86_64__)
#define SIEVE_HAVE_SSE2 1
#include <emmintrin.h>
#else
#define SIEVE_HAVE_SSE2 0
#endif

namespace sieve::simd {

#if SIEVE_HAVE_SSE2

namespace {

// -------------------------------------------------------------------- SAD --

inline std::uint32_t HorizontalSad(__m128i sad) {
  // _mm_sad_epu8 leaves two 16-bit sums in the low words of each 64-bit lane.
  return std::uint32_t(_mm_cvtsi128_si32(sad)) +
         std::uint32_t(_mm_cvtsi128_si32(_mm_srli_si128(sad, 8)));
}

inline std::uint32_t SadRow16(const std::uint8_t* a, const std::uint8_t* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  return HorizontalSad(_mm_sad_epu8(va, vb));
}

std::uint32_t SadRowSse2(const std::uint8_t* a, const std::uint8_t* b, int w) {
  std::uint32_t acc = 0;
  int x = 0;
  for (; x + 16 <= w; x += 16) acc += SadRow16(a + x, b + x);
  if (x + 8 <= w) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + x));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + x));
    acc += std::uint32_t(_mm_cvtsi128_si32(_mm_sad_epu8(va, vb)));
    x += 8;
  }
  for (; x < w; ++x) {
    acc += std::uint32_t(a[x] < b[x] ? b[x] - a[x] : a[x] - b[x]);
  }
  return acc;
}

std::uint64_t Sad16xHSse2(const std::uint8_t* a, int a_stride,
                          const std::uint8_t* b, int b_stride, int h) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRow16(a + std::ptrdiff_t(y) * a_stride,
                    b + std::ptrdiff_t(y) * b_stride);
  }
  return acc;
}

std::uint64_t SadBoundedSse2(const std::uint8_t* a, int a_stride,
                             const std::uint8_t* b, int b_stride, int w, int h,
                             std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowSse2(a + std::ptrdiff_t(y) * a_stride,
                      b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------------- transforms --

/// std::lround on 4 lanes (half away from zero), exact for |v| < 2^23.
inline __m128i LroundPs(__m128 v) {
  const __m128i trunc = _mm_cvttps_epi32(v);
  const __m128 trunc_f = _mm_cvtepi32_ps(trunc);  // exact for |v| < 2^23
  const __m128 frac = _mm_sub_ps(v, trunc_f);     // exact (Sterbenz-range)
  const __m128 abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fffffff));
  const __m128 abs_frac = _mm_and_ps(frac, abs_mask);
  const __m128i round_up = _mm_and_si128(
      _mm_castps_si128(_mm_cmpge_ps(abs_frac, _mm_set1_ps(0.5f))),
      _mm_set1_epi32(1));
  const __m128i neg_mask =
      _mm_castps_si128(_mm_cmplt_ps(v, _mm_setzero_ps()));
  // +1 where rounding away and v >= 0, -1 where rounding away and v < 0.
  const __m128i adjust =
      _mm_sub_epi32(_mm_xor_si128(round_up, neg_mask), neg_mask);
  return _mm_add_epi32(trunc, adjust);
}

void Fdct8x8Sse2(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  alignas(16) float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]; lanes = k, scan order = x.
  for (int y = 0; y < kBlockDim; ++y) {
    __m128 acc_lo = _mm_setzero_ps();
    __m128 acc_hi = _mm_setzero_ps();
    for (int x = 0; x < kBlockDim; ++x) {
      const __m128 s = _mm_set1_ps(float(in[y * kBlockDim + x]));
      acc_lo = _mm_add_ps(acc_lo,
                          _mm_mul_ps(s, _mm_load_ps(t.basis_t + x * kBlockDim)));
      acc_hi = _mm_add_ps(
          acc_hi, _mm_mul_ps(s, _mm_load_ps(t.basis_t + x * kBlockDim + 4)));
    }
    _mm_store_ps(tmp + y * kBlockDim, acc_lo);
    _mm_store_ps(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]; lanes = k, order = y.
  for (int v = 0; v < kBlockDim; ++v) {
    __m128 acc_lo = _mm_setzero_ps();
    __m128 acc_hi = _mm_setzero_ps();
    for (int y = 0; y < kBlockDim; ++y) {
      const __m128 s = _mm_set1_ps(t.basis[v * kBlockDim + y]);
      acc_lo =
          _mm_add_ps(acc_lo, _mm_mul_ps(_mm_load_ps(tmp + y * kBlockDim), s));
      acc_hi = _mm_add_ps(acc_hi,
                          _mm_mul_ps(_mm_load_ps(tmp + y * kBlockDim + 4), s));
    }
    _mm_storeu_ps(out + v * kBlockDim, acc_lo);
    _mm_storeu_ps(out + v * kBlockDim + 4, acc_hi);
  }
}

void Idct8x8Sse2(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  alignas(16) float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]; lanes = k.
  for (int y = 0; y < kBlockDim; ++y) {
    __m128 acc_lo = _mm_setzero_ps();
    __m128 acc_hi = _mm_setzero_ps();
    for (int v = 0; v < kBlockDim; ++v) {
      const __m128 s = _mm_set1_ps(t.basis[v * kBlockDim + y]);
      acc_lo = _mm_add_ps(acc_lo,
                          _mm_mul_ps(_mm_loadu_ps(in + v * kBlockDim), s));
      acc_hi = _mm_add_ps(
          acc_hi, _mm_mul_ps(_mm_loadu_ps(in + v * kBlockDim + 4), s));
    }
    _mm_store_ps(tmp + y * kBlockDim, acc_lo);
    _mm_store_ps(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Rows: out[y][x] = round(sum_k tmp[y][k] * C[k][x]); lanes = x.
  const __m128 hi_clamp = _mm_set1_ps(32767.0f);
  const __m128 lo_clamp = _mm_set1_ps(-32768.0f);
  for (int y = 0; y < kBlockDim; ++y) {
    __m128 acc_lo = _mm_setzero_ps();
    __m128 acc_hi = _mm_setzero_ps();
    for (int k = 0; k < kBlockDim; ++k) {
      const __m128 s = _mm_set1_ps(tmp[y * kBlockDim + k]);
      acc_lo = _mm_add_ps(acc_lo,
                          _mm_mul_ps(s, _mm_load_ps(t.basis + k * kBlockDim)));
      acc_hi = _mm_add_ps(
          acc_hi, _mm_mul_ps(s, _mm_load_ps(t.basis + k * kBlockDim + 4)));
    }
    // Clamp in float THEN lround: equivalent to scalar's lround-then-clamp
    // for every finite input (the clamp bounds are exactly representable),
    // and it keeps cvttps inside the exact int32 range.
    acc_lo = _mm_max_ps(_mm_min_ps(acc_lo, hi_clamp), lo_clamp);
    acc_hi = _mm_max_ps(_mm_min_ps(acc_hi, hi_clamp), lo_clamp);
    const __m128i packed = _mm_packs_epi32(LroundPs(acc_lo), LroundPs(acc_hi));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + y * kBlockDim), packed);
  }
}

void Quantize8x8Sse2(const float* dct, const std::int32_t* step,
                     std::int32_t* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const __m128 v = _mm_div_ps(
        _mm_loadu_ps(dct + i),
        _mm_cvtepi32_ps(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(step + i))));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), LroundPs(v));
  }
}

void Dequantize8x8Sse2(const std::int32_t* in, const std::int32_t* step,
                       float* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const __m128 a = _mm_cvtepi32_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i)));
    const __m128 b = _mm_cvtepi32_ps(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(step + i)));
    _mm_storeu_ps(out + i, _mm_mul_ps(a, b));
  }
}

// -------------------------------------------------------------- int8 GEMM --

// 8 output columns per step over the packed-B pairs. The activation pair is
// broadcast as one i32 lane pair [a0, a1] (u8 values are exact in i16) and
// _mm_madd_epi16 computes a0*b[n][2p] + a1*b[n][2p+1] per i32 lane — exact:
// the products are at most 255 * 128, far from the i16 saturation edge that
// maddubs-style kernels hit. Sign-extension of the s8 weights uses the
// classic unpack-with-compare idiom (SSE2 has no cvtepi8).
void GemmU8S8Row1Sse2(const std::uint8_t* a, const std::int8_t* b_packed,
                      int k, int n_cols, std::int32_t* out) {
  const int pairs = (k + 1) / 2;
  const __m128i zero = _mm_setzero_si128();
  int n = 0;
  for (; n + 8 <= n_cols; n += 8) {
    __m128i acc_lo = _mm_setzero_si128();  // columns n .. n+3
    __m128i acc_hi = _mm_setzero_si128();  // columns n+4 .. n+7
    for (int p = 0; p < pairs; ++p) {
      const int a0 = a[2 * p];
      const int a1 = (2 * p + 1 < k) ? a[2 * p + 1] : 0;
      const __m128i av = _mm_set1_epi32(a0 | (a1 << 16));
      const std::int8_t* row =
          b_packed + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m128i b8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      const __m128i sign = _mm_cmpgt_epi8(zero, b8);
      acc_lo = _mm_add_epi32(
          acc_lo, _mm_madd_epi16(av, _mm_unpacklo_epi8(b8, sign)));
      acc_hi = _mm_add_epi32(
          acc_hi, _mm_madd_epi16(av, _mm_unpackhi_epi8(b8, sign)));
    }
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n), acc_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + n + 4), acc_hi);
  }
  for (; n < n_cols; ++n) {
    std::int32_t acc = 0;
    for (int p = 0; p < pairs; ++p) {
      const std::int32_t a0 = a[2 * p];
      const std::int32_t a1 = (2 * p + 1 < k) ? a[2 * p + 1] : 0;
      const std::int8_t* row = b_packed + std::ptrdiff_t(p) * n_cols * 2;
      acc += a0 * std::int32_t(row[2 * n]) +
             a1 * std::int32_t(row[2 * n + 1]);
    }
    out[n] = acc;
  }
}

// Four rows per B-panel pass: the unpacked weight pair feeds four madds
// (one per row) so B streams through the core once per 4 output pixels —
// the panel-reuse tile that makes the int8 path beat fp32 on conv layers.
void GemmU8S8Row4Sse2(const std::uint8_t* a, int lda,
                      const std::int8_t* b_packed, int k, int n_cols,
                      std::int32_t* out, int ldo) {
  const int pairs = (k + 1) / 2;
  const __m128i zero = _mm_setzero_si128();
  const std::uint8_t* a0 = a;
  const std::uint8_t* a1 = a + lda;
  const std::uint8_t* a2 = a + 2 * std::ptrdiff_t(lda);
  const std::uint8_t* a3 = a + 3 * std::ptrdiff_t(lda);
  int n = 0;
  for (; n + 8 <= n_cols; n += 8) {
    __m128i acc0_lo = _mm_setzero_si128(), acc0_hi = _mm_setzero_si128();
    __m128i acc1_lo = _mm_setzero_si128(), acc1_hi = _mm_setzero_si128();
    __m128i acc2_lo = _mm_setzero_si128(), acc2_hi = _mm_setzero_si128();
    __m128i acc3_lo = _mm_setzero_si128(), acc3_hi = _mm_setzero_si128();
    for (int p = 0; p < pairs; ++p) {
      const int ok = 2 * p + 1 < k;
      const std::int8_t* row =
          b_packed + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m128i b8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      const __m128i sign = _mm_cmpgt_epi8(zero, b8);
      const __m128i b_lo = _mm_unpacklo_epi8(b8, sign);
      const __m128i b_hi = _mm_unpackhi_epi8(b8, sign);
      const __m128i av0 =
          _mm_set1_epi32(a0[2 * p] | ((ok ? a0[2 * p + 1] : 0) << 16));
      const __m128i av1 =
          _mm_set1_epi32(a1[2 * p] | ((ok ? a1[2 * p + 1] : 0) << 16));
      const __m128i av2 =
          _mm_set1_epi32(a2[2 * p] | ((ok ? a2[2 * p + 1] : 0) << 16));
      const __m128i av3 =
          _mm_set1_epi32(a3[2 * p] | ((ok ? a3[2 * p + 1] : 0) << 16));
      acc0_lo = _mm_add_epi32(acc0_lo, _mm_madd_epi16(av0, b_lo));
      acc0_hi = _mm_add_epi32(acc0_hi, _mm_madd_epi16(av0, b_hi));
      acc1_lo = _mm_add_epi32(acc1_lo, _mm_madd_epi16(av1, b_lo));
      acc1_hi = _mm_add_epi32(acc1_hi, _mm_madd_epi16(av1, b_hi));
      acc2_lo = _mm_add_epi32(acc2_lo, _mm_madd_epi16(av2, b_lo));
      acc2_hi = _mm_add_epi32(acc2_hi, _mm_madd_epi16(av2, b_hi));
      acc3_lo = _mm_add_epi32(acc3_lo, _mm_madd_epi16(av3, b_lo));
      acc3_hi = _mm_add_epi32(acc3_hi, _mm_madd_epi16(av3, b_hi));
    }
    std::int32_t* o = out + n;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o), acc0_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 4), acc0_hi);
    o += ldo;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o), acc1_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 4), acc1_hi);
    o += ldo;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o), acc2_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 4), acc2_hi);
    o += ldo;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o), acc3_lo);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 4), acc3_hi);
  }
  for (; n < n_cols; ++n) {
    const std::uint8_t* rows[4] = {a0, a1, a2, a3};
    for (int r = 0; r < 4; ++r) {
      std::int32_t acc = 0;
      for (int p = 0; p < pairs; ++p) {
        const std::int32_t v0 = rows[r][2 * p];
        const std::int32_t v1 = (2 * p + 1 < k) ? rows[r][2 * p + 1] : 0;
        const std::int8_t* row = b_packed + std::ptrdiff_t(p) * n_cols * 2;
        acc += v0 * std::int32_t(row[2 * n]) +
               v1 * std::int32_t(row[2 * n + 1]);
      }
      out[std::ptrdiff_t(r) * ldo + n] = acc;
    }
  }
}

void GemmU8S8Sse2(const std::uint8_t* a, int lda, int m,
                  const std::int8_t* b_packed, int k, int n_cols,
                  std::int32_t* out, int ldo) {
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    GemmU8S8Row4Sse2(a + std::ptrdiff_t(i) * lda, lda, b_packed, k, n_cols,
                     out + std::ptrdiff_t(i) * ldo, ldo);
  }
  for (; i < m; ++i) {
    GemmU8S8Row1Sse2(a + std::ptrdiff_t(i) * lda, b_packed, k, n_cols,
                     out + std::ptrdiff_t(i) * ldo);
  }
}

// ---------------------------------------------------- activation quantizer --

// 16 codes per step: four 4-lane mul/add/cvtt rounds, i32 -> i16 saturating
// packs, then the i16 -> u8 unsigned-saturating pack (exactly the scalar
// clamp, including the INT_MIN sentinel cvtt leaves for out-of-range
// values).
void QuantizeActU8Sse2(const float* x, std::size_t len, float inv_scale,
                       float bias, std::uint8_t* out) {
  const __m128 vi = _mm_set1_ps(inv_scale);
  const __m128 vb = _mm_set1_ps(bias);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    const __m128i c0 =
        _mm_cvttps_epi32(_mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + i), vi), vb));
    const __m128i c1 = _mm_cvttps_epi32(
        _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + i + 4), vi), vb));
    const __m128i c2 = _mm_cvttps_epi32(
        _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + i + 8), vi), vb));
    const __m128i c3 = _mm_cvttps_epi32(
        _mm_add_ps(_mm_mul_ps(_mm_loadu_ps(x + i + 12), vi), vb));
    const __m128i b8 = _mm_packus_epi16(_mm_packs_epi32(c0, c1),
                                        _mm_packs_epi32(c2, c3));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i), b8);
  }
  for (; i < len; ++i) {
    const std::int32_t code = std::int32_t(x[i] * inv_scale + bias);
    out[i] = std::uint8_t(code < 0 ? 0 : (code > 255 ? 255 : code));
  }
}

const KernelTable kSse2Table = {
    "sse2",        SadRowSse2,      Sad16xHSse2,      SadBoundedSse2,
    Fdct8x8Sse2,   Idct8x8Sse2,     Quantize8x8Sse2,  Dequantize8x8Sse2,
    GemmU8S8Sse2,  QuantizeActU8Sse2,
};

}  // namespace

const KernelTable* Sse2KernelTable() noexcept { return &kSse2Table; }

#else  // !SIEVE_HAVE_SSE2

const KernelTable* Sse2KernelTable() noexcept { return nullptr; }

#endif

}  // namespace sieve::simd
