// Internal sharing between the kernel-layer translation units: the DCT basis
// tables every architecture reads, and the per-arch table accessors the
// dispatcher resolves (stubs return nullptr when the ISA is not compiled in).
// Not part of the public surface — include common/simd/kernels.h instead.
#pragma once

#include <cstdint>

#include "common/simd/kernels.h"

namespace sieve::simd {

/// Orthonormal DCT-II basis C[k][n] = s(k) * cos((2n+1)kπ/16), in the two
/// layouts the kernels consume. Both are the exact float values the original
/// scalar transform computed, so the scalar kernel is bit-compatible with
/// the pre-dispatch code.
struct DctTables {
  alignas(16) float basis[kBlockLen];    ///< basis[k*8 + n]   = C[k][n]
  alignas(16) float basis_t[kBlockLen];  ///< basis_t[n*8 + k] = C[k][n]
  DctTables();
};

const DctTables& Tables() noexcept;

/// Per-architecture tables; nullptr when the ISA was not compiled in. The
/// SSE2/AVX2/NEON TUs always compile (their bodies are preprocessor-gated),
/// so these symbols always link.
const KernelTable* Sse2KernelTable() noexcept;
const KernelTable* Avx2KernelTable() noexcept;
const KernelTable* NeonKernelTable() noexcept;

}  // namespace sieve::simd
