// NEON kernel table — same bit-exactness construction as the SSE2 one:
// vectorize across independent outputs, accumulate each lane's inner sum in
// scalar order, and use only separate vmulq_f32/vaddq_f32 (never vmlaq/fmla,
// which would fuse without the intermediate rounding the scalar path has).
// Rounding replicates std::lround via truncate + exact-fraction compare.
//
// Compiled only under __ARM_NEON; elsewhere the accessor returns nullptr and
// the dispatcher falls back to scalar.
#include "common/simd/kernels_internal.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SIEVE_HAVE_NEON 1
#include <arm_neon.h>
#else
#define SIEVE_HAVE_NEON 0
#endif

namespace sieve::simd {

#if SIEVE_HAVE_NEON

namespace {

// -------------------------------------------------------------------- SAD --

inline std::uint32_t HorizontalAddU32(uint32x4_t v) {
#if defined(__aarch64__)
  return vaddvq_u32(v);
#else
  const uint64x2_t pair = vpaddlq_u32(v);
  return std::uint32_t(vgetq_lane_u64(pair, 0) + vgetq_lane_u64(pair, 1));
#endif
}

inline std::uint32_t SadRow16(const std::uint8_t* a, const std::uint8_t* b) {
  const uint8x16_t d = vabdq_u8(vld1q_u8(a), vld1q_u8(b));
  return HorizontalAddU32(vpaddlq_u16(vpaddlq_u8(d)));
}

std::uint32_t SadRowNeon(const std::uint8_t* a, const std::uint8_t* b, int w) {
  std::uint32_t acc = 0;
  int x = 0;
  for (; x + 16 <= w; x += 16) acc += SadRow16(a + x, b + x);
  if (x + 8 <= w) {
    const uint8x8_t d = vabd_u8(vld1_u8(a + x), vld1_u8(b + x));
    const uint32x2_t pair = vpaddl_u16(vpaddl_u8(d));
    acc += vget_lane_u32(pair, 0) + vget_lane_u32(pair, 1);
    x += 8;
  }
  for (; x < w; ++x) {
    acc += std::uint32_t(a[x] < b[x] ? b[x] - a[x] : a[x] - b[x]);
  }
  return acc;
}

std::uint64_t Sad16xHNeon(const std::uint8_t* a, int a_stride,
                          const std::uint8_t* b, int b_stride, int h) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRow16(a + std::ptrdiff_t(y) * a_stride,
                    b + std::ptrdiff_t(y) * b_stride);
  }
  return acc;
}

std::uint64_t SadBoundedNeon(const std::uint8_t* a, int a_stride,
                             const std::uint8_t* b, int b_stride, int w, int h,
                             std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowNeon(a + std::ptrdiff_t(y) * a_stride,
                      b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------------- transforms --

/// std::lround on 4 lanes (half away from zero), exact for |v| < 2^23.
inline int32x4_t LroundF32(float32x4_t v) {
  const int32x4_t trunc = vcvtq_s32_f32(v);        // toward zero
  const float32x4_t trunc_f = vcvtq_f32_s32(trunc);
  const float32x4_t frac = vsubq_f32(v, trunc_f);  // exact
  const uint32x4_t away =
      vcgeq_f32(vabsq_f32(frac), vdupq_n_f32(0.5f));
  const uint32x4_t neg = vcltq_f32(v, vdupq_n_f32(0.0f));
  const int32x4_t round_up =
      vreinterpretq_s32_u32(vandq_u32(away, vdupq_n_u32(1)));
  const int32x4_t neg_mask = vreinterpretq_s32_u32(neg);
  // +1 where rounding away and v >= 0, -1 where rounding away and v < 0.
  const int32x4_t adjust =
      vsubq_s32(veorq_s32(round_up, neg_mask), neg_mask);
  return vaddq_s32(trunc, adjust);
}

void Fdct8x8Neon(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]; lanes = k, scan order = x.
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int x = 0; x < kBlockDim; ++x) {
      const float32x4_t s = vdupq_n_f32(float(in[y * kBlockDim + x]));
      acc_lo = vaddq_f32(acc_lo,
                         vmulq_f32(s, vld1q_f32(t.basis_t + x * kBlockDim)));
      acc_hi = vaddq_f32(
          acc_hi, vmulq_f32(s, vld1q_f32(t.basis_t + x * kBlockDim + 4)));
    }
    vst1q_f32(tmp + y * kBlockDim, acc_lo);
    vst1q_f32(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]; lanes = k, order = y.
  for (int v = 0; v < kBlockDim; ++v) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int y = 0; y < kBlockDim; ++y) {
      const float32x4_t s = vdupq_n_f32(t.basis[v * kBlockDim + y]);
      acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(tmp + y * kBlockDim), s));
      acc_hi =
          vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(tmp + y * kBlockDim + 4), s));
    }
    vst1q_f32(out + v * kBlockDim, acc_lo);
    vst1q_f32(out + v * kBlockDim + 4, acc_hi);
  }
}

void Idct8x8Neon(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]; lanes = k.
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int v = 0; v < kBlockDim; ++v) {
      const float32x4_t s = vdupq_n_f32(t.basis[v * kBlockDim + y]);
      acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(in + v * kBlockDim), s));
      acc_hi =
          vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(in + v * kBlockDim + 4), s));
    }
    vst1q_f32(tmp + y * kBlockDim, acc_lo);
    vst1q_f32(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Rows: out[y][x] = round(sum_k tmp[y][k] * C[k][x]); lanes = x.
  const float32x4_t hi_clamp = vdupq_n_f32(32767.0f);
  const float32x4_t lo_clamp = vdupq_n_f32(-32768.0f);
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int k = 0; k < kBlockDim; ++k) {
      const float32x4_t s = vdupq_n_f32(tmp[y * kBlockDim + k]);
      acc_lo =
          vaddq_f32(acc_lo, vmulq_f32(s, vld1q_f32(t.basis + k * kBlockDim)));
      acc_hi = vaddq_f32(acc_hi,
                         vmulq_f32(s, vld1q_f32(t.basis + k * kBlockDim + 4)));
    }
    // Clamp in float THEN round: equivalent to scalar's lround-then-clamp
    // for finite inputs, and keeps the convert in exact int32 range.
    acc_lo = vmaxq_f32(vminq_f32(acc_lo, hi_clamp), lo_clamp);
    acc_hi = vmaxq_f32(vminq_f32(acc_hi, hi_clamp), lo_clamp);
    const int16x8_t packed =
        vcombine_s16(vqmovn_s32(LroundF32(acc_lo)), vqmovn_s32(LroundF32(acc_hi)));
    vst1q_s16(out + y * kBlockDim, packed);
  }
}

void Quantize8x8Neon(const float* dct, const std::int32_t* step,
                     std::int32_t* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const float32x4_t num = vld1q_f32(dct + i);
    const float32x4_t den = vcvtq_f32_s32(vld1q_s32(step + i));
#if defined(__aarch64__)
    const float32x4_t v = vdivq_f32(num, den);  // IEEE-exact division
    vst1q_s32(out + i, LroundF32(v));
#else
    // ARMv7 NEON has no vector divide; IEEE-exact scalar division per lane.
    float n[4], d[4];
    vst1q_f32(n, num);
    vst1q_f32(d, den);
    alignas(16) float q[4];
    for (int lane = 0; lane < 4; ++lane) q[lane] = n[lane] / d[lane];
    vst1q_s32(out + i, LroundF32(vld1q_f32(q)));
#endif
  }
}

void Dequantize8x8Neon(const std::int32_t* in, const std::int32_t* step,
                       float* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const float32x4_t a = vcvtq_f32_s32(vld1q_s32(in + i));
    const float32x4_t b = vcvtq_f32_s32(vld1q_s32(step + i));
    vst1q_f32(out + i, vmulq_f32(a, b));
  }
}

// -------------------------------------------------------------- int8 GEMM --

// 8 output columns per step. vld2_s8 deinterleaves a packed-B row into the
// even-k and odd-k weight vectors; vmlal_n_s16 is an exact integer
// widening multiply-accumulate (the float no-fma rule does not apply to
// integer lanes), so the accumulators match the scalar reference bit for
// bit.
void GemmU8S8Row1Neon(const std::uint8_t* a, const std::int8_t* b_packed,
                      int k, int n_cols, std::int32_t* out) {
  const int pairs = (k + 1) / 2;
  int n = 0;
  for (; n + 8 <= n_cols; n += 8) {
    int32x4_t acc_lo = vdupq_n_s32(0);  // columns n .. n+3
    int32x4_t acc_hi = vdupq_n_s32(0);  // columns n+4 .. n+7
    for (int p = 0; p < pairs; ++p) {
      const std::int16_t a0 = std::int16_t(a[2 * p]);
      const std::int16_t a1 =
          (2 * p + 1 < k) ? std::int16_t(a[2 * p + 1]) : std::int16_t(0);
      const std::int8_t* row =
          b_packed + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const int8x8x2_t de = vld2_s8(row);
      const int16x8_t b0 = vmovl_s8(de.val[0]);  // k = 2p weights, 8 columns
      const int16x8_t b1 = vmovl_s8(de.val[1]);  // k = 2p+1 weights
      acc_lo = vmlal_n_s16(acc_lo, vget_low_s16(b0), a0);
      acc_lo = vmlal_n_s16(acc_lo, vget_low_s16(b1), a1);
      acc_hi = vmlal_n_s16(acc_hi, vget_high_s16(b0), a0);
      acc_hi = vmlal_n_s16(acc_hi, vget_high_s16(b1), a1);
    }
    vst1q_s32(out + n, acc_lo);
    vst1q_s32(out + n + 4, acc_hi);
  }
  for (; n < n_cols; ++n) {
    std::int32_t acc = 0;
    for (int p = 0; p < pairs; ++p) {
      const std::int32_t a0 = a[2 * p];
      const std::int32_t a1 = (2 * p + 1 < k) ? a[2 * p + 1] : 0;
      const std::int8_t* row = b_packed + std::ptrdiff_t(p) * n_cols * 2;
      acc += a0 * std::int32_t(row[2 * n]) +
             a1 * std::int32_t(row[2 * n + 1]);
    }
    out[n] = acc;
  }
}

// Two rows per B-panel pass (NEON's 32 vector registers would fit more, but
// two already halves the deinterleave/widen work per output pixel, which is
// the expensive part here). Integer lanes are exact, so the tiling cannot
// change the accumulators.
void GemmU8S8Row2Neon(const std::uint8_t* a, int lda,
                      const std::int8_t* b_packed, int k, int n_cols,
                      std::int32_t* out, int ldo) {
  const int pairs = (k + 1) / 2;
  const std::uint8_t* a0 = a;
  const std::uint8_t* a1 = a + lda;
  int n = 0;
  for (; n + 8 <= n_cols; n += 8) {
    int32x4_t acc0_lo = vdupq_n_s32(0), acc0_hi = vdupq_n_s32(0);
    int32x4_t acc1_lo = vdupq_n_s32(0), acc1_hi = vdupq_n_s32(0);
    for (int p = 0; p < pairs; ++p) {
      const int ok = 2 * p + 1 < k;
      const std::int16_t a0e = std::int16_t(a0[2 * p]);
      const std::int16_t a0o = ok ? std::int16_t(a0[2 * p + 1]) : 0;
      const std::int16_t a1e = std::int16_t(a1[2 * p]);
      const std::int16_t a1o = ok ? std::int16_t(a1[2 * p + 1]) : 0;
      const std::int8_t* row =
          b_packed + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const int8x8x2_t de = vld2_s8(row);
      const int16x8_t b0 = vmovl_s8(de.val[0]);
      const int16x8_t b1 = vmovl_s8(de.val[1]);
      acc0_lo = vmlal_n_s16(acc0_lo, vget_low_s16(b0), a0e);
      acc0_lo = vmlal_n_s16(acc0_lo, vget_low_s16(b1), a0o);
      acc0_hi = vmlal_n_s16(acc0_hi, vget_high_s16(b0), a0e);
      acc0_hi = vmlal_n_s16(acc0_hi, vget_high_s16(b1), a0o);
      acc1_lo = vmlal_n_s16(acc1_lo, vget_low_s16(b0), a1e);
      acc1_lo = vmlal_n_s16(acc1_lo, vget_low_s16(b1), a1o);
      acc1_hi = vmlal_n_s16(acc1_hi, vget_high_s16(b0), a1e);
      acc1_hi = vmlal_n_s16(acc1_hi, vget_high_s16(b1), a1o);
    }
    vst1q_s32(out + n, acc0_lo);
    vst1q_s32(out + n + 4, acc0_hi);
    vst1q_s32(out + ldo + n, acc1_lo);
    vst1q_s32(out + ldo + n + 4, acc1_hi);
  }
  for (; n < n_cols; ++n) {
    const std::uint8_t* rows[2] = {a0, a1};
    for (int r = 0; r < 2; ++r) {
      std::int32_t acc = 0;
      for (int p = 0; p < pairs; ++p) {
        const std::int32_t v0 = rows[r][2 * p];
        const std::int32_t v1 = (2 * p + 1 < k) ? rows[r][2 * p + 1] : 0;
        const std::int8_t* row = b_packed + std::ptrdiff_t(p) * n_cols * 2;
        acc += v0 * std::int32_t(row[2 * n]) +
               v1 * std::int32_t(row[2 * n + 1]);
      }
      out[std::ptrdiff_t(r) * ldo + n] = acc;
    }
  }
}

void GemmU8S8Neon(const std::uint8_t* a, int lda, int m,
                  const std::int8_t* b_packed, int k, int n_cols,
                  std::int32_t* out, int ldo) {
  int i = 0;
  for (; i + 2 <= m; i += 2) {
    GemmU8S8Row2Neon(a + std::ptrdiff_t(i) * lda, lda, b_packed, k, n_cols,
                     out + std::ptrdiff_t(i) * ldo, ldo);
  }
  for (; i < m; ++i) {
    GemmU8S8Row1Neon(a + std::ptrdiff_t(i) * lda, b_packed, k, n_cols,
                     out + std::ptrdiff_t(i) * ldo);
  }
}

// ---------------------------------------------------- activation quantizer --

// 16 codes per step: four 4-lane mul/add/truncating-convert rounds
// (vcvtq_s32_f32 truncates toward zero like the scalar cast), saturating
// narrows s32 -> s16 -> u8 — exactly the scalar clamp.
void QuantizeActU8Neon(const float* x, std::size_t len, float inv_scale,
                       float bias, std::uint8_t* out) {
  const float32x4_t vi = vdupq_n_f32(inv_scale);
  const float32x4_t vb = vdupq_n_f32(bias);
  std::size_t i = 0;
  for (; i + 16 <= len; i += 16) {
    // Separate mul/add (not vmla): the scalar reference rounds between the
    // multiply and the add, and vmla may lower to a fused fmla.
    const int32x4_t c0 =
        vcvtq_s32_f32(vaddq_f32(vmulq_f32(vld1q_f32(x + i), vi), vb));
    const int32x4_t c1 =
        vcvtq_s32_f32(vaddq_f32(vmulq_f32(vld1q_f32(x + i + 4), vi), vb));
    const int32x4_t c2 =
        vcvtq_s32_f32(vaddq_f32(vmulq_f32(vld1q_f32(x + i + 8), vi), vb));
    const int32x4_t c3 =
        vcvtq_s32_f32(vaddq_f32(vmulq_f32(vld1q_f32(x + i + 12), vi), vb));
    const int16x8_t p01 = vcombine_s16(vqmovn_s32(c0), vqmovn_s32(c1));
    const int16x8_t p23 = vcombine_s16(vqmovn_s32(c2), vqmovn_s32(c3));
    vst1q_u8(out + i, vcombine_u8(vqmovun_s16(p01), vqmovun_s16(p23)));
  }
  for (; i < len; ++i) {
    const std::int32_t code = std::int32_t(x[i] * inv_scale + bias);
    out[i] = std::uint8_t(code < 0 ? 0 : (code > 255 ? 255 : code));
  }
}

const KernelTable kNeonTable = {
    "neon",        SadRowNeon,      Sad16xHNeon,      SadBoundedNeon,
    Fdct8x8Neon,   Idct8x8Neon,     Quantize8x8Neon,  Dequantize8x8Neon,
    GemmU8S8Neon,  QuantizeActU8Neon,
};

}  // namespace

const KernelTable* NeonKernelTable() noexcept { return &kNeonTable; }

#else  // !SIEVE_HAVE_NEON

const KernelTable* NeonKernelTable() noexcept { return nullptr; }

#endif

}  // namespace sieve::simd
