// NEON kernel table — same bit-exactness construction as the SSE2 one:
// vectorize across independent outputs, accumulate each lane's inner sum in
// scalar order, and use only separate vmulq_f32/vaddq_f32 (never vmlaq/fmla,
// which would fuse without the intermediate rounding the scalar path has).
// Rounding replicates std::lround via truncate + exact-fraction compare.
//
// Compiled only under __ARM_NEON; elsewhere the accessor returns nullptr and
// the dispatcher falls back to scalar.
#include "common/simd/kernels_internal.h"

#if defined(__ARM_NEON) || defined(__ARM_NEON__)
#define SIEVE_HAVE_NEON 1
#include <arm_neon.h>
#else
#define SIEVE_HAVE_NEON 0
#endif

namespace sieve::simd {

#if SIEVE_HAVE_NEON

namespace {

// -------------------------------------------------------------------- SAD --

inline std::uint32_t HorizontalAddU32(uint32x4_t v) {
#if defined(__aarch64__)
  return vaddvq_u32(v);
#else
  const uint64x2_t pair = vpaddlq_u32(v);
  return std::uint32_t(vgetq_lane_u64(pair, 0) + vgetq_lane_u64(pair, 1));
#endif
}

inline std::uint32_t SadRow16(const std::uint8_t* a, const std::uint8_t* b) {
  const uint8x16_t d = vabdq_u8(vld1q_u8(a), vld1q_u8(b));
  return HorizontalAddU32(vpaddlq_u16(vpaddlq_u8(d)));
}

std::uint32_t SadRowNeon(const std::uint8_t* a, const std::uint8_t* b, int w) {
  std::uint32_t acc = 0;
  int x = 0;
  for (; x + 16 <= w; x += 16) acc += SadRow16(a + x, b + x);
  if (x + 8 <= w) {
    const uint8x8_t d = vabd_u8(vld1_u8(a + x), vld1_u8(b + x));
    const uint32x2_t pair = vpaddl_u16(vpaddl_u8(d));
    acc += vget_lane_u32(pair, 0) + vget_lane_u32(pair, 1);
    x += 8;
  }
  for (; x < w; ++x) {
    acc += std::uint32_t(a[x] < b[x] ? b[x] - a[x] : a[x] - b[x]);
  }
  return acc;
}

std::uint64_t Sad16xHNeon(const std::uint8_t* a, int a_stride,
                          const std::uint8_t* b, int b_stride, int h) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRow16(a + std::ptrdiff_t(y) * a_stride,
                    b + std::ptrdiff_t(y) * b_stride);
  }
  return acc;
}

std::uint64_t SadBoundedNeon(const std::uint8_t* a, int a_stride,
                             const std::uint8_t* b, int b_stride, int w, int h,
                             std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowNeon(a + std::ptrdiff_t(y) * a_stride,
                      b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------------- transforms --

/// std::lround on 4 lanes (half away from zero), exact for |v| < 2^23.
inline int32x4_t LroundF32(float32x4_t v) {
  const int32x4_t trunc = vcvtq_s32_f32(v);        // toward zero
  const float32x4_t trunc_f = vcvtq_f32_s32(trunc);
  const float32x4_t frac = vsubq_f32(v, trunc_f);  // exact
  const uint32x4_t away =
      vcgeq_f32(vabsq_f32(frac), vdupq_n_f32(0.5f));
  const uint32x4_t neg = vcltq_f32(v, vdupq_n_f32(0.0f));
  const int32x4_t round_up =
      vreinterpretq_s32_u32(vandq_u32(away, vdupq_n_u32(1)));
  const int32x4_t neg_mask = vreinterpretq_s32_u32(neg);
  // +1 where rounding away and v >= 0, -1 where rounding away and v < 0.
  const int32x4_t adjust =
      vsubq_s32(veorq_s32(round_up, neg_mask), neg_mask);
  return vaddq_s32(trunc, adjust);
}

void Fdct8x8Neon(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]; lanes = k, scan order = x.
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int x = 0; x < kBlockDim; ++x) {
      const float32x4_t s = vdupq_n_f32(float(in[y * kBlockDim + x]));
      acc_lo = vaddq_f32(acc_lo,
                         vmulq_f32(s, vld1q_f32(t.basis_t + x * kBlockDim)));
      acc_hi = vaddq_f32(
          acc_hi, vmulq_f32(s, vld1q_f32(t.basis_t + x * kBlockDim + 4)));
    }
    vst1q_f32(tmp + y * kBlockDim, acc_lo);
    vst1q_f32(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]; lanes = k, order = y.
  for (int v = 0; v < kBlockDim; ++v) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int y = 0; y < kBlockDim; ++y) {
      const float32x4_t s = vdupq_n_f32(t.basis[v * kBlockDim + y]);
      acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(tmp + y * kBlockDim), s));
      acc_hi =
          vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(tmp + y * kBlockDim + 4), s));
    }
    vst1q_f32(out + v * kBlockDim, acc_lo);
    vst1q_f32(out + v * kBlockDim + 4, acc_hi);
  }
}

void Idct8x8Neon(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]; lanes = k.
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int v = 0; v < kBlockDim; ++v) {
      const float32x4_t s = vdupq_n_f32(t.basis[v * kBlockDim + y]);
      acc_lo = vaddq_f32(acc_lo, vmulq_f32(vld1q_f32(in + v * kBlockDim), s));
      acc_hi =
          vaddq_f32(acc_hi, vmulq_f32(vld1q_f32(in + v * kBlockDim + 4), s));
    }
    vst1q_f32(tmp + y * kBlockDim, acc_lo);
    vst1q_f32(tmp + y * kBlockDim + 4, acc_hi);
  }
  // Rows: out[y][x] = round(sum_k tmp[y][k] * C[k][x]); lanes = x.
  const float32x4_t hi_clamp = vdupq_n_f32(32767.0f);
  const float32x4_t lo_clamp = vdupq_n_f32(-32768.0f);
  for (int y = 0; y < kBlockDim; ++y) {
    float32x4_t acc_lo = vdupq_n_f32(0.0f);
    float32x4_t acc_hi = vdupq_n_f32(0.0f);
    for (int k = 0; k < kBlockDim; ++k) {
      const float32x4_t s = vdupq_n_f32(tmp[y * kBlockDim + k]);
      acc_lo =
          vaddq_f32(acc_lo, vmulq_f32(s, vld1q_f32(t.basis + k * kBlockDim)));
      acc_hi = vaddq_f32(acc_hi,
                         vmulq_f32(s, vld1q_f32(t.basis + k * kBlockDim + 4)));
    }
    // Clamp in float THEN round: equivalent to scalar's lround-then-clamp
    // for finite inputs, and keeps the convert in exact int32 range.
    acc_lo = vmaxq_f32(vminq_f32(acc_lo, hi_clamp), lo_clamp);
    acc_hi = vmaxq_f32(vminq_f32(acc_hi, hi_clamp), lo_clamp);
    const int16x8_t packed =
        vcombine_s16(vqmovn_s32(LroundF32(acc_lo)), vqmovn_s32(LroundF32(acc_hi)));
    vst1q_s16(out + y * kBlockDim, packed);
  }
}

void Quantize8x8Neon(const float* dct, const std::int32_t* step,
                     std::int32_t* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const float32x4_t num = vld1q_f32(dct + i);
    const float32x4_t den = vcvtq_f32_s32(vld1q_s32(step + i));
#if defined(__aarch64__)
    const float32x4_t v = vdivq_f32(num, den);  // IEEE-exact division
    vst1q_s32(out + i, LroundF32(v));
#else
    // ARMv7 NEON has no vector divide; IEEE-exact scalar division per lane.
    float n[4], d[4];
    vst1q_f32(n, num);
    vst1q_f32(d, den);
    alignas(16) float q[4];
    for (int lane = 0; lane < 4; ++lane) q[lane] = n[lane] / d[lane];
    vst1q_s32(out + i, LroundF32(vld1q_f32(q)));
#endif
  }
}

void Dequantize8x8Neon(const std::int32_t* in, const std::int32_t* step,
                       float* out) {
  for (int i = 0; i < kBlockLen; i += 4) {
    const float32x4_t a = vcvtq_f32_s32(vld1q_s32(in + i));
    const float32x4_t b = vcvtq_f32_s32(vld1q_s32(step + i));
    vst1q_f32(out + i, vmulq_f32(a, b));
  }
}

const KernelTable kNeonTable = {
    "neon",        SadRowNeon,      Sad16xHNeon,      SadBoundedNeon,
    Fdct8x8Neon,   Idct8x8Neon,     Quantize8x8Neon,  Dequantize8x8Neon,
};

}  // namespace

const KernelTable* NeonKernelTable() noexcept { return &kNeonTable; }

#else  // !SIEVE_HAVE_NEON

const KernelTable* NeonKernelTable() noexcept { return nullptr; }

#endif

}  // namespace sieve::simd
