// Scalar reference kernels + the dispatch machinery. This TU (like the other
// kernel TUs) is compiled with -ffp-contract=off: the bit-exactness contract
// across scalar/SSE2/NEON depends on no mul+add pair being contracted into an
// FMA on either side.
#include "common/simd/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>

#include "common/simd/kernels_internal.h"

namespace sieve::simd {

DctTables::DctTables() {
  const double pi = std::acos(-1.0);
  for (int k = 0; k < kBlockDim; ++k) {
    const double s =
        k == 0 ? std::sqrt(1.0 / kBlockDim) : std::sqrt(2.0 / kBlockDim);
    for (int n = 0; n < kBlockDim; ++n) {
      const float c =
          float(s * std::cos((2.0 * n + 1.0) * k * pi / (2.0 * kBlockDim)));
      basis[k * kBlockDim + n] = c;
      basis_t[n * kBlockDim + k] = c;
    }
  }
}

const DctTables& Tables() noexcept {
  static const DctTables tables;
  return tables;
}

namespace {

// ------------------------------------------------------------ scalar SAD --

std::uint32_t SadRowScalar(const std::uint8_t* a, const std::uint8_t* b,
                           int w) {
  std::uint32_t acc = 0;
  for (int x = 0; x < w; ++x) {
    acc += std::uint32_t(std::abs(int(a[x]) - int(b[x])));
  }
  return acc;
}

std::uint64_t Sad16xHScalar(const std::uint8_t* a, int a_stride,
                            const std::uint8_t* b, int b_stride, int h) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowScalar(a + std::ptrdiff_t(y) * a_stride,
                        b + std::ptrdiff_t(y) * b_stride, 16);
  }
  return acc;
}

std::uint64_t SadBoundedScalar(const std::uint8_t* a, int a_stride,
                               const std::uint8_t* b, int b_stride, int w,
                               int h, std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowScalar(a + std::ptrdiff_t(y) * a_stride,
                        b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------ scalar transforms --

void Fdct8x8Scalar(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int x = 0; x < kBlockDim; ++x) {
        acc += float(in[y * kBlockDim + x]) * t.basis[k * kBlockDim + x];
      }
      tmp[y * kBlockDim + k] = acc;
    }
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]
  for (int v = 0; v < kBlockDim; ++v) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int y = 0; y < kBlockDim; ++y) {
        acc += tmp[y * kBlockDim + k] * t.basis[v * kBlockDim + y];
      }
      out[v * kBlockDim + k] = acc;
    }
  }
}

/// std::lround + int16 clamp: the rounding every idct table must replicate.
std::int16_t RoundClampToInt16(float v) {
  long r = std::lround(v);
  if (r < -32768) r = -32768;
  if (r > 32767) r = 32767;
  return std::int16_t(r);
}

void Idct8x8Scalar(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int v = 0; v < kBlockDim; ++v) {
        acc += in[v * kBlockDim + k] * t.basis[v * kBlockDim + y];
      }
      tmp[y * kBlockDim + k] = acc;
    }
  }
  // Rows: out[y][x] = sum_k tmp[y][k] * C[k][x]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int x = 0; x < kBlockDim; ++x) {
      float acc = 0;
      for (int k = 0; k < kBlockDim; ++k) {
        acc += tmp[y * kBlockDim + k] * t.basis[k * kBlockDim + x];
      }
      out[y * kBlockDim + x] = RoundClampToInt16(acc);
    }
  }
}

void Quantize8x8Scalar(const float* dct, const std::int32_t* step,
                       std::int32_t* out) {
  for (int i = 0; i < kBlockLen; ++i) {
    out[i] = std::int32_t(std::lround(dct[i] / float(step[i])));
  }
}

void Dequantize8x8Scalar(const std::int32_t* in, const std::int32_t* step,
                         float* out) {
  for (int i = 0; i < kBlockLen; ++i) {
    out[i] = float(in[i]) * float(step[i]);
  }
}

// ------------------------------------------------------ scalar int8 GEMM --

// The reference semantics for gemm_u8s8. The inner loops walk the packed-B
// layout (k-pairs outer, columns inner) exactly like the SIMD tables;
// integer accumulation is associative for these magnitudes, so any table
// order (including the vector tables' 4-row M tiling) is bit-identical
// anyway.
void GemmU8S8Scalar(const std::uint8_t* a, int lda, int m,
                    const std::int8_t* b_packed, int k, int n_cols,
                    std::int32_t* out, int ldo) {
  const int pairs = (k + 1) / 2;
  for (int i = 0; i < m; ++i) {
    const std::uint8_t* arow = a + std::ptrdiff_t(i) * lda;
    std::int32_t* orow = out + std::ptrdiff_t(i) * ldo;
    for (int n = 0; n < n_cols; ++n) orow[n] = 0;
    for (int p = 0; p < pairs; ++p) {
      const std::int32_t a0 = arow[2 * p];
      const std::int32_t a1 = (2 * p + 1 < k) ? arow[2 * p + 1] : 0;
      const std::int8_t* row = b_packed + std::ptrdiff_t(p) * n_cols * 2;
      for (int n = 0; n < n_cols; ++n) {
        orow[n] += a0 * std::int32_t(row[2 * n]) +
                   a1 * std::int32_t(row[2 * n + 1]);
      }
    }
  }
}

// Reference semantics for quantize_act_u8: one IEEE multiply, one IEEE add,
// a truncating float->int convert, then the [0, 255] clamp. The vector
// tables run the identical op sequence per lane.
void QuantizeActU8Scalar(const float* x, std::size_t len, float inv_scale,
                         float bias, std::uint8_t* out) {
  for (std::size_t i = 0; i < len; ++i) {
    const std::int32_t code = std::int32_t(x[i] * inv_scale + bias);
    out[i] = std::uint8_t(code < 0 ? 0 : (code > 255 ? 255 : code));
  }
}

const KernelTable kScalarTable = {
    "scalar",        SadRowScalar,      Sad16xHScalar,      SadBoundedScalar,
    Fdct8x8Scalar,   Idct8x8Scalar,     Quantize8x8Scalar,  Dequantize8x8Scalar,
    GemmU8S8Scalar,  QuantizeActU8Scalar,
};

// --------------------------------------------------------------- dispatch --

bool CpuSupportsSse2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2") != 0;
#else
  return false;
#endif
}

bool CpuSupportsAvx2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

std::size_t PackedGemmBSize(int k, int n_cols) noexcept {
  return std::size_t((k + 1) / 2) * std::size_t(n_cols) * 2;
}

void PackGemmB(const std::int8_t* b, int k, int n_cols,
               std::int8_t* packed) noexcept {
  const int pairs = (k + 1) / 2;
  for (int p = 0; p < pairs; ++p) {
    std::int8_t* row = packed + std::ptrdiff_t(p) * n_cols * 2;
    for (int n = 0; n < n_cols; ++n) {
      row[2 * n] = b[std::ptrdiff_t(n) * k + 2 * p];
      row[2 * n + 1] =
          (2 * p + 1 < k) ? b[std::ptrdiff_t(n) * k + 2 * p + 1] : 0;
    }
  }
}

const char* KernelArchName(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: return "scalar";
    case KernelArch::kSse2: return "sse2";
    case KernelArch::kAvx2: return "avx2";
    case KernelArch::kNeon: return "neon";
  }
  return "unknown";
}

bool ArchCompiled(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: return true;
    case KernelArch::kSse2: return Sse2KernelTable() != nullptr;
    case KernelArch::kAvx2: return Avx2KernelTable() != nullptr;
    case KernelArch::kNeon: return NeonKernelTable() != nullptr;
  }
  return false;
}

bool ArchSupported(KernelArch arch) noexcept {
  if (!ArchCompiled(arch)) return false;
  // A binary compiled for NEON only runs on NEON hardware; SSE2/AVX2
  // presence is CPUID-verified so a generic x86 build stays safe on cores
  // that lack the wider ISA.
  if (arch == KernelArch::kSse2) return CpuSupportsSse2();
  if (arch == KernelArch::kAvx2) return CpuSupportsAvx2();
  return true;
}

const KernelTable& KernelsFor(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: break;
    case KernelArch::kSse2:
      if (const KernelTable* t = Sse2KernelTable()) return *t;
      break;
    case KernelArch::kAvx2:
      if (const KernelTable* t = Avx2KernelTable()) return *t;
      break;
    case KernelArch::kNeon:
      if (const KernelTable* t = NeonKernelTable()) return *t;
      break;
  }
  return kScalarTable;
}

std::vector<KernelArch> CompiledArches() {
  std::vector<KernelArch> arches{KernelArch::kScalar};
  if (ArchCompiled(KernelArch::kSse2)) arches.push_back(KernelArch::kSse2);
  if (ArchCompiled(KernelArch::kAvx2)) arches.push_back(KernelArch::kAvx2);
  if (ArchCompiled(KernelArch::kNeon)) arches.push_back(KernelArch::kNeon);
  return arches;
}

bool ScalarForcedByEnv() noexcept {
  const char* v = std::getenv("SIEVE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

bool KernelArchFromEnv(KernelArch* out) noexcept {
  if (const char* v = std::getenv("SIEVE_KERNEL_ARCH")) {
    if (std::strcmp(v, "scalar") == 0) { *out = KernelArch::kScalar; return true; }
    if (std::strcmp(v, "sse2") == 0)   { *out = KernelArch::kSse2;   return true; }
    if (std::strcmp(v, "avx2") == 0)   { *out = KernelArch::kAvx2;   return true; }
    if (std::strcmp(v, "neon") == 0)   { *out = KernelArch::kNeon;   return true; }
    return false;  // malformed: ignored, hardware-best wins
  }
  if (ScalarForcedByEnv()) {
    *out = KernelArch::kScalar;
    return true;
  }
  return false;
}

KernelArch BestArch() noexcept {
  KernelArch forced;
  if (KernelArchFromEnv(&forced) && ArchSupported(forced)) return forced;
  if (ArchSupported(KernelArch::kNeon)) return KernelArch::kNeon;
  if (ArchSupported(KernelArch::kAvx2)) return KernelArch::kAvx2;
  if (ArchSupported(KernelArch::kSse2)) return KernelArch::kSse2;
  return KernelArch::kScalar;
}

const KernelTable& ActiveKernels() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    table = &KernelsFor(BestArch());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void SetActiveKernels(KernelArch arch) noexcept {
  g_active.store(&KernelsFor(arch), std::memory_order_release);
}

KernelArch ActiveArch() noexcept {
  const KernelTable* table = &ActiveKernels();
  if (ArchCompiled(KernelArch::kSse2) &&
      table == &KernelsFor(KernelArch::kSse2)) {
    return KernelArch::kSse2;
  }
  if (ArchCompiled(KernelArch::kAvx2) &&
      table == &KernelsFor(KernelArch::kAvx2)) {
    return KernelArch::kAvx2;
  }
  if (ArchCompiled(KernelArch::kNeon) &&
      table == &KernelsFor(KernelArch::kNeon)) {
    return KernelArch::kNeon;
  }
  return KernelArch::kScalar;
}

}  // namespace sieve::simd
