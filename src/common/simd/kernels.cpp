// Scalar reference kernels + the dispatch machinery. This TU (like the other
// kernel TUs) is compiled with -ffp-contract=off: the bit-exactness contract
// across scalar/SSE2/NEON depends on no mul+add pair being contracted into an
// FMA on either side.
#include "common/simd/kernels.h"

#include <atomic>
#include <cmath>
#include <cstdlib>

#include "common/simd/kernels_internal.h"

namespace sieve::simd {

DctTables::DctTables() {
  const double pi = std::acos(-1.0);
  for (int k = 0; k < kBlockDim; ++k) {
    const double s =
        k == 0 ? std::sqrt(1.0 / kBlockDim) : std::sqrt(2.0 / kBlockDim);
    for (int n = 0; n < kBlockDim; ++n) {
      const float c =
          float(s * std::cos((2.0 * n + 1.0) * k * pi / (2.0 * kBlockDim)));
      basis[k * kBlockDim + n] = c;
      basis_t[n * kBlockDim + k] = c;
    }
  }
}

const DctTables& Tables() noexcept {
  static const DctTables tables;
  return tables;
}

namespace {

// ------------------------------------------------------------ scalar SAD --

std::uint32_t SadRowScalar(const std::uint8_t* a, const std::uint8_t* b,
                           int w) {
  std::uint32_t acc = 0;
  for (int x = 0; x < w; ++x) {
    acc += std::uint32_t(std::abs(int(a[x]) - int(b[x])));
  }
  return acc;
}

std::uint64_t Sad16xHScalar(const std::uint8_t* a, int a_stride,
                            const std::uint8_t* b, int b_stride, int h) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowScalar(a + std::ptrdiff_t(y) * a_stride,
                        b + std::ptrdiff_t(y) * b_stride, 16);
  }
  return acc;
}

std::uint64_t SadBoundedScalar(const std::uint8_t* a, int a_stride,
                               const std::uint8_t* b, int b_stride, int w,
                               int h, std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowScalar(a + std::ptrdiff_t(y) * a_stride,
                        b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------ scalar transforms --

void Fdct8x8Scalar(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int x = 0; x < kBlockDim; ++x) {
        acc += float(in[y * kBlockDim + x]) * t.basis[k * kBlockDim + x];
      }
      tmp[y * kBlockDim + k] = acc;
    }
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]
  for (int v = 0; v < kBlockDim; ++v) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int y = 0; y < kBlockDim; ++y) {
        acc += tmp[y * kBlockDim + k] * t.basis[v * kBlockDim + y];
      }
      out[v * kBlockDim + k] = acc;
    }
  }
}

/// std::lround + int16 clamp: the rounding every idct table must replicate.
std::int16_t RoundClampToInt16(float v) {
  long r = std::lround(v);
  if (r < -32768) r = -32768;
  if (r > 32767) r = 32767;
  return std::int16_t(r);
}

void Idct8x8Scalar(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int k = 0; k < kBlockDim; ++k) {
      float acc = 0;
      for (int v = 0; v < kBlockDim; ++v) {
        acc += in[v * kBlockDim + k] * t.basis[v * kBlockDim + y];
      }
      tmp[y * kBlockDim + k] = acc;
    }
  }
  // Rows: out[y][x] = sum_k tmp[y][k] * C[k][x]
  for (int y = 0; y < kBlockDim; ++y) {
    for (int x = 0; x < kBlockDim; ++x) {
      float acc = 0;
      for (int k = 0; k < kBlockDim; ++k) {
        acc += tmp[y * kBlockDim + k] * t.basis[k * kBlockDim + x];
      }
      out[y * kBlockDim + x] = RoundClampToInt16(acc);
    }
  }
}

void Quantize8x8Scalar(const float* dct, const std::int32_t* step,
                       std::int32_t* out) {
  for (int i = 0; i < kBlockLen; ++i) {
    out[i] = std::int32_t(std::lround(dct[i] / float(step[i])));
  }
}

void Dequantize8x8Scalar(const std::int32_t* in, const std::int32_t* step,
                         float* out) {
  for (int i = 0; i < kBlockLen; ++i) {
    out[i] = float(in[i]) * float(step[i]);
  }
}

const KernelTable kScalarTable = {
    "scalar",        SadRowScalar,      Sad16xHScalar,      SadBoundedScalar,
    Fdct8x8Scalar,   Idct8x8Scalar,     Quantize8x8Scalar,  Dequantize8x8Scalar,
};

// --------------------------------------------------------------- dispatch --

bool CpuSupportsSse2() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("sse2") != 0;
#else
  return false;
#endif
}

std::atomic<const KernelTable*> g_active{nullptr};

}  // namespace

const char* KernelArchName(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: return "scalar";
    case KernelArch::kSse2: return "sse2";
    case KernelArch::kNeon: return "neon";
  }
  return "unknown";
}

bool ArchCompiled(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: return true;
    case KernelArch::kSse2: return Sse2KernelTable() != nullptr;
    case KernelArch::kNeon: return NeonKernelTable() != nullptr;
  }
  return false;
}

bool ArchSupported(KernelArch arch) noexcept {
  if (!ArchCompiled(arch)) return false;
  // A binary compiled for NEON only runs on NEON hardware; SSE2 presence is
  // CPUID-verified so a generic x86 build stays safe on ancient cores.
  if (arch == KernelArch::kSse2) return CpuSupportsSse2();
  return true;
}

const KernelTable& KernelsFor(KernelArch arch) noexcept {
  switch (arch) {
    case KernelArch::kScalar: break;
    case KernelArch::kSse2:
      if (const KernelTable* t = Sse2KernelTable()) return *t;
      break;
    case KernelArch::kNeon:
      if (const KernelTable* t = NeonKernelTable()) return *t;
      break;
  }
  return kScalarTable;
}

std::vector<KernelArch> CompiledArches() {
  std::vector<KernelArch> arches{KernelArch::kScalar};
  if (ArchCompiled(KernelArch::kSse2)) arches.push_back(KernelArch::kSse2);
  if (ArchCompiled(KernelArch::kNeon)) arches.push_back(KernelArch::kNeon);
  return arches;
}

bool ScalarForcedByEnv() noexcept {
  const char* v = std::getenv("SIEVE_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
}

KernelArch BestArch() noexcept {
  if (ScalarForcedByEnv()) return KernelArch::kScalar;
  if (ArchSupported(KernelArch::kNeon)) return KernelArch::kNeon;
  if (ArchSupported(KernelArch::kSse2)) return KernelArch::kSse2;
  return KernelArch::kScalar;
}

const KernelTable& ActiveKernels() noexcept {
  const KernelTable* table = g_active.load(std::memory_order_acquire);
  if (table == nullptr) {
    // Benign race: concurrent first calls resolve to the same table.
    table = &KernelsFor(BestArch());
    g_active.store(table, std::memory_order_release);
  }
  return *table;
}

void SetActiveKernels(KernelArch arch) noexcept {
  g_active.store(&KernelsFor(arch), std::memory_order_release);
}

KernelArch ActiveArch() noexcept {
  const KernelTable* table = &ActiveKernels();
  if (ArchCompiled(KernelArch::kSse2) &&
      table == &KernelsFor(KernelArch::kSse2)) {
    return KernelArch::kSse2;
  }
  if (ArchCompiled(KernelArch::kNeon) &&
      table == &KernelsFor(KernelArch::kNeon)) {
    return KernelArch::kNeon;
  }
  return KernelArch::kScalar;
}

}  // namespace sieve::simd
