// AVX2 kernel table. Same bit-exactness construction as the SSE2 one, twice
// as wide:
//
//  * SAD uses vpsadbw (_mm256_sad_epu8) — an exact integer reduction — over
//    32-byte spans, with the 16/8/tail steps matching the SSE2 kernel.
//  * The DCT/IDCT vectorize across all 8 *outputs* of each stage in a single
//    ymm accumulator while each lane accumulates its inner sum in the same
//    sequential order as the scalar loops, using only IEEE-exact
//    _mm256_mul_ps/_mm256_add_ps (no FMA — this TU is built with
//    -ffp-contract=off like the others, and none is written by hand).
//  * Rounding replicates std::lround via the same truncate + exact-fraction
//    compare as the SSE2 LroundPs, on 8 lanes.
//  * The int8 GEMM widens u8/s8 operands to i16 and uses _mm256_madd_epi16
//    (exact for these magnitudes) — never the saturating vpmaddubsw.
//
// The TU is compiled with -mavx2 on x86 (see CMakeLists.txt); dispatch is
// CPUID-verified so the kernels never execute on a core without AVX2.
// Elsewhere the accessor returns nullptr and the dispatcher falls back.
#include "common/simd/kernels_internal.h"

#include <cstring>

#if defined(__AVX2__)
#define SIEVE_HAVE_AVX2 1
#include <immintrin.h>
#else
#define SIEVE_HAVE_AVX2 0
#endif

namespace sieve::simd {

#if SIEVE_HAVE_AVX2

namespace {

// -------------------------------------------------------------------- SAD --

inline std::uint64_t HorizontalSad64(__m256i sad) {
  // _mm256_sad_epu8 leaves four 16-bit sums in the low words of each 64-bit
  // lane; fold the two 128-bit halves, then the two 64-bit halves.
  const __m128i sum = _mm_add_epi64(_mm256_castsi256_si128(sad),
                                    _mm256_extracti128_si256(sad, 1));
  return std::uint64_t(std::uint32_t(_mm_cvtsi128_si32(sum))) +
         std::uint64_t(std::uint32_t(_mm_cvtsi128_si32(_mm_srli_si128(sum, 8))));
}

inline std::uint32_t SadRow32(const std::uint8_t* a, const std::uint8_t* b) {
  const __m256i va = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(a));
  const __m256i vb = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(b));
  return std::uint32_t(HorizontalSad64(_mm256_sad_epu8(va, vb)));
}

inline std::uint32_t SadRow16(const std::uint8_t* a, const std::uint8_t* b) {
  const __m128i va = _mm_loadu_si128(reinterpret_cast<const __m128i*>(a));
  const __m128i vb = _mm_loadu_si128(reinterpret_cast<const __m128i*>(b));
  const __m128i sad = _mm_sad_epu8(va, vb);
  return std::uint32_t(_mm_cvtsi128_si32(sad)) +
         std::uint32_t(_mm_cvtsi128_si32(_mm_srli_si128(sad, 8)));
}

std::uint32_t SadRowAvx2(const std::uint8_t* a, const std::uint8_t* b, int w) {
  std::uint32_t acc = 0;
  int x = 0;
  for (; x + 32 <= w; x += 32) acc += SadRow32(a + x, b + x);
  if (x + 16 <= w) {
    acc += SadRow16(a + x, b + x);
    x += 16;
  }
  if (x + 8 <= w) {
    const __m128i va =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(a + x));
    const __m128i vb =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(b + x));
    acc += std::uint32_t(_mm_cvtsi128_si32(_mm_sad_epu8(va, vb)));
    x += 8;
  }
  for (; x < w; ++x) {
    acc += std::uint32_t(a[x] < b[x] ? b[x] - a[x] : a[x] - b[x]);
  }
  return acc;
}

std::uint64_t Sad16xHAvx2(const std::uint8_t* a, int a_stride,
                          const std::uint8_t* b, int b_stride, int h) {
  // Two 16-byte rows per vpsadbw. Integer SAD is exact under any grouping,
  // so pairing rows changes nothing observable.
  __m256i vacc = _mm256_setzero_si256();
  int y = 0;
  for (; y + 2 <= h; y += 2) {
    const std::uint8_t* a0 = a + std::ptrdiff_t(y) * a_stride;
    const std::uint8_t* b0 = b + std::ptrdiff_t(y) * b_stride;
    const __m256i va = _mm256_inserti128_si256(
        _mm256_castsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0))),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(a0 + a_stride)), 1);
    const __m256i vb = _mm256_inserti128_si256(
        _mm256_castsi128_si256(
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0))),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(b0 + b_stride)), 1);
    vacc = _mm256_add_epi64(vacc, _mm256_sad_epu8(va, vb));
  }
  std::uint64_t acc = HorizontalSad64(vacc);
  if (y < h) {
    acc += SadRow16(a + std::ptrdiff_t(y) * a_stride,
                    b + std::ptrdiff_t(y) * b_stride);
  }
  return acc;
}

std::uint64_t SadBoundedAvx2(const std::uint8_t* a, int a_stride,
                             const std::uint8_t* b, int b_stride, int w, int h,
                             std::uint64_t bound) {
  std::uint64_t acc = 0;
  for (int y = 0; y < h; ++y) {
    acc += SadRowAvx2(a + std::ptrdiff_t(y) * a_stride,
                      b + std::ptrdiff_t(y) * b_stride, w);
    if (acc >= bound) return acc;
  }
  return acc;
}

// ------------------------------------------------------------- transforms --

/// std::lround on 8 lanes (half away from zero), exact for |v| < 2^23.
inline __m256i LroundPs(__m256 v) {
  const __m256i trunc = _mm256_cvttps_epi32(v);
  const __m256 trunc_f = _mm256_cvtepi32_ps(trunc);  // exact for |v| < 2^23
  const __m256 frac = _mm256_sub_ps(v, trunc_f);     // exact (Sterbenz-range)
  const __m256 abs_mask = _mm256_castsi256_ps(_mm256_set1_epi32(0x7fffffff));
  const __m256 abs_frac = _mm256_and_ps(frac, abs_mask);
  const __m256i round_up = _mm256_and_si256(
      _mm256_castps_si256(
          _mm256_cmp_ps(abs_frac, _mm256_set1_ps(0.5f), _CMP_GE_OQ)),
      _mm256_set1_epi32(1));
  const __m256i neg_mask = _mm256_castps_si256(
      _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ));
  // +1 where rounding away and v >= 0, -1 where rounding away and v < 0.
  const __m256i adjust =
      _mm256_sub_epi32(_mm256_xor_si256(round_up, neg_mask), neg_mask);
  return _mm256_add_epi32(trunc, adjust);
}

void Fdct8x8Avx2(const std::int16_t* in, float* out) {
  const DctTables& t = Tables();
  alignas(32) float tmp[kBlockLen];
  // Rows: tmp[y][k] = sum_x in[y][x] * C[k][x]; all 8 k-lanes in one ymm,
  // scan order = x (identical per-lane accumulation order to scalar).
  for (int y = 0; y < kBlockDim; ++y) {
    __m256 acc = _mm256_setzero_ps();
    for (int x = 0; x < kBlockDim; ++x) {
      const __m256 s = _mm256_set1_ps(float(in[y * kBlockDim + x]));
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(s, _mm256_loadu_ps(t.basis_t + x * kBlockDim)));
    }
    _mm256_store_ps(tmp + y * kBlockDim, acc);
  }
  // Columns: out[v][k] = sum_y tmp[y][k] * C[v][y]; lanes = k, order = y.
  for (int v = 0; v < kBlockDim; ++v) {
    __m256 acc = _mm256_setzero_ps();
    for (int y = 0; y < kBlockDim; ++y) {
      const __m256 s = _mm256_set1_ps(t.basis[v * kBlockDim + y]);
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_load_ps(tmp + y * kBlockDim), s));
    }
    _mm256_storeu_ps(out + v * kBlockDim, acc);
  }
}

void Idct8x8Avx2(const float* in, std::int16_t* out) {
  const DctTables& t = Tables();
  alignas(32) float tmp[kBlockLen];
  // Columns first: tmp[y][k] = sum_v in[v][k] * C[v][y]; lanes = k.
  for (int y = 0; y < kBlockDim; ++y) {
    __m256 acc = _mm256_setzero_ps();
    for (int v = 0; v < kBlockDim; ++v) {
      const __m256 s = _mm256_set1_ps(t.basis[v * kBlockDim + y]);
      acc = _mm256_add_ps(acc,
                          _mm256_mul_ps(_mm256_loadu_ps(in + v * kBlockDim), s));
    }
    _mm256_store_ps(tmp + y * kBlockDim, acc);
  }
  // Rows: out[y][x] = round(sum_k tmp[y][k] * C[k][x]); lanes = x.
  const __m256 hi_clamp = _mm256_set1_ps(32767.0f);
  const __m256 lo_clamp = _mm256_set1_ps(-32768.0f);
  for (int y = 0; y < kBlockDim; ++y) {
    __m256 acc = _mm256_setzero_ps();
    for (int k = 0; k < kBlockDim; ++k) {
      const __m256 s = _mm256_set1_ps(tmp[y * kBlockDim + k]);
      acc = _mm256_add_ps(
          acc, _mm256_mul_ps(s, _mm256_loadu_ps(t.basis + k * kBlockDim)));
    }
    // Clamp in float THEN lround: equivalent to scalar's lround-then-clamp
    // for every finite input (the clamp bounds are exactly representable),
    // and it keeps cvttps inside the exact int32 range.
    acc = _mm256_max_ps(_mm256_min_ps(acc, hi_clamp), lo_clamp);
    const __m256i r = LroundPs(acc);
    const __m128i packed = _mm_packs_epi32(_mm256_castsi256_si128(r),
                                           _mm256_extracti128_si256(r, 1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + y * kBlockDim), packed);
  }
}

void Quantize8x8Avx2(const float* dct, const std::int32_t* step,
                     std::int32_t* out) {
  for (int i = 0; i < kBlockLen; i += 8) {
    const __m256 v = _mm256_div_ps(
        _mm256_loadu_ps(dct + i),
        _mm256_cvtepi32_ps(_mm256_loadu_si256(
            reinterpret_cast<const __m256i*>(step + i))));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), LroundPs(v));
  }
}

void Dequantize8x8Avx2(const std::int32_t* in, const std::int32_t* step,
                       float* out) {
  for (int i = 0; i < kBlockLen; i += 8) {
    const __m256 a = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(in + i)));
    const __m256 b = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(step + i)));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(a, b));
  }
}

// -------------------------------------------------------------- int8 GEMM --

// The inner product walks packed-B pairs with _mm256_madd_epi16:
// a0*b[n][2p] + a1*b[n][2p+1] per i32 lane, exactly (products are at most
// 255 * 128 — nowhere near i16 saturation). The activation pair for each
// row is pre-widened to adjacent i16s so the broadcast is one vpbroadcastd
// from memory instead of a byte-assembled immediate — with four rows per
// B-panel pass that broadcast was the hot loop's dominant cost.

// Pairs per widened-A stack chunk; k longer than 2 * kChunkPairs is
// processed in chunks with the partial products accumulated through `out`
// (exact: integer adds in any grouping).
constexpr int kChunkPairs = 1024;

// Widens `pc` pairs of row `arow` starting at pair p0 into i16s,
// zero-padding past the end of the row (the odd-k tail).
inline void WidenRowAvx2(const std::uint8_t* arow, int p0, int pc, int k,
                         std::int16_t* aw) {
  const int base = 2 * p0;
  const int avail = k - base < 2 * pc ? k - base : 2 * pc;
  int j = 0;
  for (; j + 16 <= avail; j += 16) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(arow + base + j));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(aw + j),
                        _mm256_cvtepu8_epi16(v));
  }
  for (; j < avail; ++j) aw[j] = arow[base + j];
  for (; j < 2 * pc; ++j) aw[j] = 0;
}

// One vpbroadcastd of the widened pair p: a0 in the low i16 of every i32
// lane, a1 in the high.
inline __m256i BcastPairAvx2(const std::int16_t* aw, int p) {
  std::int32_t v;
  std::memcpy(&v, aw + 2 * p, sizeof(v));
  return _mm256_set1_epi32(v);
}

// One row x one packed-B chunk of `pc` pairs. `first` selects store vs
// accumulate into `out`.
void GemmU8S8Row1ChunkAvx2(const std::int16_t* aw, int pc,
                           const std::int8_t* b_chunk, int n_cols,
                           std::int32_t* out, bool first) {
  int n = 0;
  for (; n + 16 <= n_cols; n += 16) {
    __m256i acc_lo = _mm256_setzero_si256();  // columns n .. n+7
    __m256i acc_hi = _mm256_setzero_si256();  // columns n+8 .. n+15
    for (int p = 0; p < pc; ++p) {
      const __m256i av = BcastPairAvx2(aw, p);
      const std::int8_t* row =
          b_chunk + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m128i b8_lo =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      const __m128i b8_hi =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 16));
      acc_lo = _mm256_add_epi32(
          acc_lo, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(b8_lo)));
      acc_hi = _mm256_add_epi32(
          acc_hi, _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(b8_hi)));
    }
    __m256i* o_lo = reinterpret_cast<__m256i*>(out + n);
    __m256i* o_hi = reinterpret_cast<__m256i*>(out + n + 8);
    if (!first) {
      acc_lo = _mm256_add_epi32(acc_lo, _mm256_loadu_si256(o_lo));
      acc_hi = _mm256_add_epi32(acc_hi, _mm256_loadu_si256(o_hi));
    }
    _mm256_storeu_si256(o_lo, acc_lo);
    _mm256_storeu_si256(o_hi, acc_hi);
  }
  for (; n + 8 <= n_cols; n += 8) {
    __m256i acc = _mm256_setzero_si256();
    for (int p = 0; p < pc; ++p) {
      const __m256i av = BcastPairAvx2(aw, p);
      const std::int8_t* row =
          b_chunk + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m128i b8 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row));
      acc = _mm256_add_epi32(acc,
                             _mm256_madd_epi16(av, _mm256_cvtepi8_epi16(b8)));
    }
    __m256i* o = reinterpret_cast<__m256i*>(out + n);
    if (!first) acc = _mm256_add_epi32(acc, _mm256_loadu_si256(o));
    _mm256_storeu_si256(o, acc);
  }
  for (; n < n_cols; ++n) {
    std::int32_t acc = first ? 0 : out[n];
    for (int p = 0; p < pc; ++p) {
      const std::int8_t* row = b_chunk + std::ptrdiff_t(p) * n_cols * 2;
      acc += std::int32_t(aw[2 * p]) * std::int32_t(row[2 * n]) +
             std::int32_t(aw[2 * p + 1]) * std::int32_t(row[2 * n + 1]);
    }
    out[n] = acc;
  }
}

// Four rows per B-panel pass: each sign-extended weight vector feeds four
// madds (one per row), so B streams through the core once per 4 output
// pixels instead of once per pixel — the panel-reuse tile that makes the
// int8 path beat fp32 on conv layers.
void GemmU8S8Row4ChunkAvx2(const std::int16_t* const aw[4], int pc,
                           const std::int8_t* b_chunk, int n_cols,
                           std::int32_t* out, int ldo, bool first) {
  int n = 0;
  for (; n + 16 <= n_cols; n += 16) {
    __m256i acc0_lo = _mm256_setzero_si256(), acc0_hi = _mm256_setzero_si256();
    __m256i acc1_lo = _mm256_setzero_si256(), acc1_hi = _mm256_setzero_si256();
    __m256i acc2_lo = _mm256_setzero_si256(), acc2_hi = _mm256_setzero_si256();
    __m256i acc3_lo = _mm256_setzero_si256(), acc3_hi = _mm256_setzero_si256();
    for (int p = 0; p < pc; ++p) {
      const std::int8_t* row =
          b_chunk + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m256i b_lo = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row)));
      const __m256i b_hi = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row + 16)));
      const __m256i av0 = BcastPairAvx2(aw[0], p);
      const __m256i av1 = BcastPairAvx2(aw[1], p);
      const __m256i av2 = BcastPairAvx2(aw[2], p);
      const __m256i av3 = BcastPairAvx2(aw[3], p);
      acc0_lo = _mm256_add_epi32(acc0_lo, _mm256_madd_epi16(av0, b_lo));
      acc0_hi = _mm256_add_epi32(acc0_hi, _mm256_madd_epi16(av0, b_hi));
      acc1_lo = _mm256_add_epi32(acc1_lo, _mm256_madd_epi16(av1, b_lo));
      acc1_hi = _mm256_add_epi32(acc1_hi, _mm256_madd_epi16(av1, b_hi));
      acc2_lo = _mm256_add_epi32(acc2_lo, _mm256_madd_epi16(av2, b_lo));
      acc2_hi = _mm256_add_epi32(acc2_hi, _mm256_madd_epi16(av2, b_hi));
      acc3_lo = _mm256_add_epi32(acc3_lo, _mm256_madd_epi16(av3, b_lo));
      acc3_hi = _mm256_add_epi32(acc3_hi, _mm256_madd_epi16(av3, b_hi));
    }
    __m256i accs[4][2] = {{acc0_lo, acc0_hi},
                          {acc1_lo, acc1_hi},
                          {acc2_lo, acc2_hi},
                          {acc3_lo, acc3_hi}};
    for (int r = 0; r < 4; ++r) {
      std::int32_t* o = out + std::ptrdiff_t(r) * ldo + n;
      __m256i lo = accs[r][0], hi = accs[r][1];
      if (!first) {
        lo = _mm256_add_epi32(
            lo, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o)));
        hi = _mm256_add_epi32(
            hi, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o + 8)));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o), lo);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o + 8), hi);
    }
  }
  for (; n + 8 <= n_cols; n += 8) {
    __m256i accs[4] = {_mm256_setzero_si256(), _mm256_setzero_si256(),
                       _mm256_setzero_si256(), _mm256_setzero_si256()};
    for (int p = 0; p < pc; ++p) {
      const std::int8_t* row =
          b_chunk + std::ptrdiff_t(p) * n_cols * 2 + std::ptrdiff_t(n) * 2;
      const __m256i b = _mm256_cvtepi8_epi16(
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(row)));
      for (int r = 0; r < 4; ++r) {
        accs[r] = _mm256_add_epi32(
            accs[r], _mm256_madd_epi16(BcastPairAvx2(aw[r], p), b));
      }
    }
    for (int r = 0; r < 4; ++r) {
      std::int32_t* o = out + std::ptrdiff_t(r) * ldo + n;
      __m256i acc = accs[r];
      if (!first) {
        acc = _mm256_add_epi32(
            acc, _mm256_loadu_si256(reinterpret_cast<const __m256i*>(o)));
      }
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(o), acc);
    }
  }
  for (; n < n_cols; ++n) {
    for (int r = 0; r < 4; ++r) {
      std::int32_t acc = first ? 0 : out[std::ptrdiff_t(r) * ldo + n];
      for (int p = 0; p < pc; ++p) {
        const std::int8_t* row = b_chunk + std::ptrdiff_t(p) * n_cols * 2;
        acc += std::int32_t(aw[r][2 * p]) * std::int32_t(row[2 * n]) +
               std::int32_t(aw[r][2 * p + 1]) * std::int32_t(row[2 * n + 1]);
      }
      out[std::ptrdiff_t(r) * ldo + n] = acc;
    }
  }
}

void GemmU8S8Avx2(const std::uint8_t* a, int lda, int m,
                  const std::int8_t* b_packed, int k, int n_cols,
                  std::int32_t* out, int ldo) {
  const int pairs = (k + 1) / 2;
  alignas(32) std::int16_t aw0[2 * kChunkPairs];
  alignas(32) std::int16_t aw1[2 * kChunkPairs];
  alignas(32) std::int16_t aw2[2 * kChunkPairs];
  alignas(32) std::int16_t aw3[2 * kChunkPairs];
  const std::int16_t* const aw[4] = {aw0, aw1, aw2, aw3};
  int i = 0;
  for (; i + 4 <= m; i += 4) {
    const std::uint8_t* arow = a + std::ptrdiff_t(i) * lda;
    for (int p0 = 0; p0 < pairs; p0 += kChunkPairs) {
      const int pc = pairs - p0 < kChunkPairs ? pairs - p0 : kChunkPairs;
      WidenRowAvx2(arow, p0, pc, k, aw0);
      WidenRowAvx2(arow + lda, p0, pc, k, aw1);
      WidenRowAvx2(arow + 2 * std::ptrdiff_t(lda), p0, pc, k, aw2);
      WidenRowAvx2(arow + 3 * std::ptrdiff_t(lda), p0, pc, k, aw3);
      GemmU8S8Row4ChunkAvx2(aw, pc,
                            b_packed + std::ptrdiff_t(p0) * n_cols * 2,
                            n_cols, out + std::ptrdiff_t(i) * ldo, ldo,
                            p0 == 0);
    }
  }
  for (; i < m; ++i) {
    const std::uint8_t* arow = a + std::ptrdiff_t(i) * lda;
    for (int p0 = 0; p0 < pairs; p0 += kChunkPairs) {
      const int pc = pairs - p0 < kChunkPairs ? pairs - p0 : kChunkPairs;
      WidenRowAvx2(arow, p0, pc, k, aw0);
      GemmU8S8Row1ChunkAvx2(aw0, pc,
                            b_packed + std::ptrdiff_t(p0) * n_cols * 2,
                            n_cols, out + std::ptrdiff_t(i) * ldo, p0 == 0);
    }
  }
}

// --------------------------------------------------- activation quantizer --

// 32 codes per step: four 8-lane mul/add/cvtt rounds, i32 -> i16 saturating
// packs, i16 -> u8 unsigned-saturating pack (exactly the scalar clamp), and
// a cross-lane permute to undo the 128-bit-lane interleave of the packs.
void QuantizeActU8Avx2(const float* x, std::size_t len, float inv_scale,
                       float bias, std::uint8_t* out) {
  const __m256 vi = _mm256_set1_ps(inv_scale);
  const __m256 vb = _mm256_set1_ps(bias);
  const __m256i order = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
  std::size_t i = 0;
  for (; i + 32 <= len; i += 32) {
    const __m256i c0 = _mm256_cvttps_epi32(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i), vi), vb));
    const __m256i c1 = _mm256_cvttps_epi32(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i + 8), vi), vb));
    const __m256i c2 = _mm256_cvttps_epi32(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i + 16), vi), vb));
    const __m256i c3 = _mm256_cvttps_epi32(
        _mm256_add_ps(_mm256_mul_ps(_mm256_loadu_ps(x + i + 24), vi), vb));
    const __m256i p01 = _mm256_packs_epi32(c0, c1);
    const __m256i p23 = _mm256_packs_epi32(c2, c3);
    const __m256i b8 = _mm256_permutevar8x32_epi32(
        _mm256_packus_epi16(p01, p23), order);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), b8);
  }
  for (; i < len; ++i) {
    const std::int32_t code = std::int32_t(x[i] * inv_scale + bias);
    out[i] = std::uint8_t(code < 0 ? 0 : (code > 255 ? 255 : code));
  }
}

const KernelTable kAvx2Table = {
    "avx2",        SadRowAvx2,      Sad16xHAvx2,      SadBoundedAvx2,
    Fdct8x8Avx2,   Idct8x8Avx2,     Quantize8x8Avx2,  Dequantize8x8Avx2,
    GemmU8S8Avx2,  QuantizeActU8Avx2,
};

}  // namespace

const KernelTable* Avx2KernelTable() noexcept { return &kAvx2Table; }

#else  // !SIEVE_HAVE_AVX2

const KernelTable* Avx2KernelTable() noexcept { return nullptr; }

#endif

}  // namespace sieve::simd
