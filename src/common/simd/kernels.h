// SIMD kernel layer: runtime-dispatched implementations of the codec's
// innermost loops — block SAD and the 8x8 DCT/IDCT + quantizer pair that
// profiling puts at the top of a motion-heavy encode.
//
// Design rules (the whole point of this layer):
//
//  * Every kernel is BIT-EXACT across architectures. The scalar table is the
//    reference; the SSE2/NEON tables perform the same floating-point
//    operations in the same order (vectorized across independent *outputs*,
//    never across a single output's accumulation), use IEEE-exact ops only
//    (mul/add/div — no FMA, no rsqrt/rcp approximations), and replicate
//    std::lround's round-half-away-from-zero. The kernel translation units
//    are compiled with -ffp-contract=off so the compiler cannot contract the
//    scalar path into FMA either. Consequence: encoded bitstreams are
//    byte-identical whichever table is active.
//
//  * Dispatch is compile-time gated (each arch TU compiles to a stub
//    returning nullptr when its ISA is unavailable) plus runtime-verified
//    (CPUID on x86). The SIEVE_FORCE_SCALAR environment variable — set and
//    not "0" — pins the scalar table, and SetActiveKernels() overrides both
//    for tests and tools.
//
//  * This layer sits at the bottom of the dependency graph (raw pointers and
//    strides only, no media/codec types) so media/ and codec/ can both call
//    it.
//
// See docs/perf.md ("The SIMD kernel layer") for how to add a kernel.
#pragma once

#include <cstdint>
#include <vector>

namespace sieve::simd {

/// All transform kernels operate on 8x8 blocks in row-major order.
inline constexpr int kBlockDim = 8;
inline constexpr int kBlockLen = kBlockDim * kBlockDim;

/// One architecture's implementations of the hot kernels. Strides are in
/// elements (== bytes for the uint8 SAD inputs). All pointers must be valid
/// for the full extent they describe; transform pointers must not alias.
struct KernelTable {
  const char* name;  ///< "scalar" | "sse2" | "neon"

  /// Sum of absolute differences over one row of `w` pixels.
  std::uint32_t (*sad_row)(const std::uint8_t* a, const std::uint8_t* b, int w);

  /// SAD of a 16-wide, h-tall region (the macroblock fast case).
  std::uint64_t (*sad16xh)(const std::uint8_t* a, int a_stride,
                           const std::uint8_t* b, int b_stride, int h);

  /// SAD of a w×h region with row-granular early termination: after each
  /// row, if the running sum has reached `bound` the scan stops and the
  /// partial sum is returned. Exact when the result is < bound; some value
  /// in [bound, exact] otherwise. Every table checks at the same row
  /// boundaries, so return values are identical across architectures.
  std::uint64_t (*sad_bounded)(const std::uint8_t* a, int a_stride,
                               const std::uint8_t* b, int b_stride, int w,
                               int h, std::uint64_t bound);

  /// Forward 8x8 DCT-II (orthonormal) of centered int16 pixels into floats.
  void (*fdct8x8)(const std::int16_t* in, float* out);

  /// Inverse 8x8 DCT of floats back to int16 pixels, rounded half away from
  /// zero (std::lround semantics) and clamped to the int16 range. Inputs
  /// must be finite with magnitude < 2^30.
  void (*idct8x8)(const float* in, std::int16_t* out);

  /// out[i] = lround(dct[i] / float(step[i])). Steps must be in [1, 2^24);
  /// |dct[i] / step[i]| must be < 2^31.
  void (*quantize8x8)(const float* dct, const std::int32_t* step,
                      std::int32_t* out);

  /// out[i] = float(in[i]) * float(step[i]).
  void (*dequantize8x8)(const std::int32_t* in, const std::int32_t* step,
                        float* out);
};

enum class KernelArch { kScalar, kSse2, kNeon };

const char* KernelArchName(KernelArch arch) noexcept;

/// True if the given architecture's table was compiled into this binary.
bool ArchCompiled(KernelArch arch) noexcept;

/// True if the architecture is compiled in AND the running CPU supports it
/// (CPUID-checked on x86; NEON presence is implied by compiling for it).
bool ArchSupported(KernelArch arch) noexcept;

/// The table for an architecture; falls back to scalar when that arch was
/// not compiled in. (kScalar always exists.)
const KernelTable& KernelsFor(KernelArch arch) noexcept;

/// All architectures compiled into this binary (always includes kScalar).
std::vector<KernelArch> CompiledArches();

/// True if SIEVE_FORCE_SCALAR is set in the environment (and not "0").
bool ScalarForcedByEnv() noexcept;

/// The best supported architecture, honoring SIEVE_FORCE_SCALAR.
KernelArch BestArch() noexcept;

/// The table the hot paths dispatch through. Resolved on first use from
/// BestArch(); a relaxed atomic pointer load thereafter.
const KernelTable& ActiveKernels() noexcept;

/// Override the active table (tests, tools, A/B benches). Takes precedence
/// over SIEVE_FORCE_SCALAR; falls back to scalar if `arch` is not compiled
/// in. Not intended to be raced against in-flight encodes — switch between
/// them.
void SetActiveKernels(KernelArch arch) noexcept;

/// The architecture of the currently active table.
KernelArch ActiveArch() noexcept;

/// RAII override of the active table (tests, A/B tools): activates `arch`
/// on construction and restores the previously active table on destruction.
class ScopedKernelArch {
 public:
  explicit ScopedKernelArch(KernelArch arch) noexcept : prev_(ActiveArch()) {
    SetActiveKernels(arch);
  }
  ~ScopedKernelArch() { SetActiveKernels(prev_); }
  ScopedKernelArch(const ScopedKernelArch&) = delete;
  ScopedKernelArch& operator=(const ScopedKernelArch&) = delete;

 private:
  KernelArch prev_;
};

}  // namespace sieve::simd
