// SIMD kernel layer: runtime-dispatched implementations of the codec's
// innermost loops — block SAD and the 8x8 DCT/IDCT + quantizer pair that
// profiling puts at the top of a motion-heavy encode.
//
// Design rules (the whole point of this layer):
//
//  * Every kernel is BIT-EXACT across architectures. The scalar table is the
//    reference; the SSE2/NEON tables perform the same floating-point
//    operations in the same order (vectorized across independent *outputs*,
//    never across a single output's accumulation), use IEEE-exact ops only
//    (mul/add/div — no FMA, no rsqrt/rcp approximations), and replicate
//    std::lround's round-half-away-from-zero. The kernel translation units
//    are compiled with -ffp-contract=off so the compiler cannot contract the
//    scalar path into FMA either. Consequence: encoded bitstreams are
//    byte-identical whichever table is active.
//
//  * Dispatch is compile-time gated (each arch TU compiles to a stub
//    returning nullptr when its ISA is unavailable) plus runtime-verified
//    (CPUID on x86). The SIEVE_KERNEL_ARCH environment variable
//    (scalar|sse2|avx2|neon) pins any compiled-in, CPU-supported table;
//    SIEVE_FORCE_SCALAR — set and not "0" — remains as a legacy alias for
//    SIEVE_KERNEL_ARCH=scalar. SetActiveKernels() overrides both for tests
//    and tools.
//
//  * This layer sits at the bottom of the dependency graph (raw pointers and
//    strides only, no media/codec types) so media/ and codec/ can both call
//    it.
//
// See docs/perf.md ("The SIMD kernel layer") for how to add a kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sieve::simd {

/// All transform kernels operate on 8x8 blocks in row-major order.
inline constexpr int kBlockDim = 8;
inline constexpr int kBlockLen = kBlockDim * kBlockDim;

/// One architecture's implementations of the hot kernels. Strides are in
/// elements (== bytes for the uint8 SAD inputs). All pointers must be valid
/// for the full extent they describe; transform pointers must not alias.
struct KernelTable {
  const char* name;  ///< "scalar" | "sse2" | "avx2" | "neon"

  /// Sum of absolute differences over one row of `w` pixels.
  std::uint32_t (*sad_row)(const std::uint8_t* a, const std::uint8_t* b, int w);

  /// SAD of a 16-wide, h-tall region (the macroblock fast case).
  std::uint64_t (*sad16xh)(const std::uint8_t* a, int a_stride,
                           const std::uint8_t* b, int b_stride, int h);

  /// SAD of a w×h region with row-granular early termination: after each
  /// row, if the running sum has reached `bound` the scan stops and the
  /// partial sum is returned. Exact when the result is < bound; some value
  /// in [bound, exact] otherwise. Every table checks at the same row
  /// boundaries, so return values are identical across architectures.
  std::uint64_t (*sad_bounded)(const std::uint8_t* a, int a_stride,
                               const std::uint8_t* b, int b_stride, int w,
                               int h, std::uint64_t bound);

  /// Forward 8x8 DCT-II (orthonormal) of centered int16 pixels into floats.
  void (*fdct8x8)(const std::int16_t* in, float* out);

  /// Inverse 8x8 DCT of floats back to int16 pixels, rounded half away from
  /// zero (std::lround semantics) and clamped to the int16 range. Inputs
  /// must be finite with magnitude < 2^30.
  void (*idct8x8)(const float* in, std::int16_t* out);

  /// out[i] = lround(dct[i] / float(step[i])). Steps must be in [1, 2^24);
  /// |dct[i] / step[i]| must be < 2^31.
  void (*quantize8x8)(const float* dct, const std::int32_t* step,
                      std::int32_t* out);

  /// out[i] = float(in[i]) * float(step[i]).
  void (*dequantize8x8)(const std::int32_t* in, const std::int32_t* step,
                        float* out);

  /// Quantized GEMM microkernel: for each row i in [0, m),
  /// out[i*ldo + n] = sum_{p<k} int32(a[i*lda + p]) * int32(b[p][n]) for n
  /// in [0, n_cols). `a` holds m rows of k unsigned-8-bit quantized
  /// activations with row stride `lda`; `b_packed` holds signed-8-bit
  /// weights in the k-pair interleaved layout produced by PackGemmB. The
  /// vector tables tile m (4 rows per B-panel pass) so the weight panel is
  /// loaded once per tile instead of once per row — that, not the 8-bit
  /// multiplies alone, is where the int8 speedup over fp32 comes from. All
  /// arithmetic is exact 32-bit integer math (no saturating widening
  /// multiplies), so every table returns identical accumulators regardless
  /// of tiling. Safe for k <= 2^16 (the worst case 255 * 128 * 2^16 stays
  /// inside int32).
  void (*gemm_u8s8)(const std::uint8_t* a, int lda, int m,
                    const std::int8_t* b_packed, int k, int n_cols,
                    std::int32_t* out, int ldo);

  /// Activation quantizer: out[i] = clamp(trunc(x[i] * inv_scale + bias),
  /// 0, 255) where bias = zero_point + 0.5 — i.e. round half up for the
  /// values that survive the clamp (truncation equals floor once the value
  /// is >= 0, and every negative value clamps to 0 either way). The
  /// multiply and add are single IEEE float ops and the truncating convert
  /// is the same cvtt on every lane width, so all tables produce identical
  /// codes. Inputs must be finite.
  void (*quantize_act_u8)(const float* x, std::size_t len, float inv_scale,
                          float bias, std::uint8_t* out);
};

enum class KernelArch { kScalar, kSse2, kAvx2, kNeon };

const char* KernelArchName(KernelArch arch) noexcept;

/// True if the given architecture's table was compiled into this binary.
bool ArchCompiled(KernelArch arch) noexcept;

/// True if the architecture is compiled in AND the running CPU supports it
/// (CPUID-checked on x86; NEON presence is implied by compiling for it).
bool ArchSupported(KernelArch arch) noexcept;

/// The table for an architecture; falls back to scalar when that arch was
/// not compiled in. (kScalar always exists.)
const KernelTable& KernelsFor(KernelArch arch) noexcept;

/// All architectures compiled into this binary (always includes kScalar).
std::vector<KernelArch> CompiledArches();

/// Element count of the packed B buffer gemm_u8s8 consumes for a k × n_cols
/// weight matrix: ((k + 1) / 2) * n_cols * 2 (odd k is zero-padded).
std::size_t PackedGemmBSize(int k, int n_cols) noexcept;

/// Packs a row-major [n_cols][k] signed-int8 weight matrix (b[n * k + p] is
/// output column n, reduction index p) into the k-pair interleaved layout
/// gemm_u8s8 consumes: packed[(p2 * n_cols + n) * 2 + j] = b[n][2*p2 + j],
/// with the odd tail element zero-padded. `packed` must hold
/// PackedGemmBSize(k, n_cols) elements.
void PackGemmB(const std::int8_t* b, int k, int n_cols,
               std::int8_t* packed) noexcept;

/// True if SIEVE_FORCE_SCALAR is set in the environment (and not "0").
/// Legacy alias for SIEVE_KERNEL_ARCH=scalar.
bool ScalarForcedByEnv() noexcept;

/// Parses the SIEVE_KERNEL_ARCH environment override
/// ("scalar"|"sse2"|"avx2"|"neon"). Returns true and writes `*out` when the
/// variable is set to a recognized name; malformed values are ignored. When
/// SIEVE_KERNEL_ARCH is unset, SIEVE_FORCE_SCALAR (set and not "0") reports
/// kScalar, as before.
bool KernelArchFromEnv(KernelArch* out) noexcept;

/// The best supported architecture, honoring SIEVE_KERNEL_ARCH /
/// SIEVE_FORCE_SCALAR. An env override naming an unsupported or uncompiled
/// arch is ignored (the hardware-best table is used instead).
KernelArch BestArch() noexcept;

/// The table the hot paths dispatch through. Resolved on first use from
/// BestArch(); a relaxed atomic pointer load thereafter.
const KernelTable& ActiveKernels() noexcept;

/// Override the active table (tests, tools, A/B benches). Takes precedence
/// over the environment overrides; falls back to scalar if `arch` is not compiled
/// in. Not intended to be raced against in-flight encodes — switch between
/// them.
void SetActiveKernels(KernelArch arch) noexcept;

/// The architecture of the currently active table.
KernelArch ActiveArch() noexcept;

/// RAII override of the active table (tests, A/B tools): activates `arch`
/// on construction and restores the previously active table on destruction.
class ScopedKernelArch {
 public:
  explicit ScopedKernelArch(KernelArch arch) noexcept : prev_(ActiveArch()) {
    SetActiveKernels(arch);
  }
  ~ScopedKernelArch() { SetActiveKernels(prev_); }
  ScopedKernelArch(const ScopedKernelArch&) = delete;
  ScopedKernelArch& operator=(const ScopedKernelArch&) = delete;

 private:
  KernelArch prev_;
};

}  // namespace sieve::simd
