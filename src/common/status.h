// Lightweight status / expected-value error handling used across the library.
//
// The library avoids exceptions on hot paths (codec inner loops, dataflow
// scheduling); fallible public APIs return Expected<T> and the caller decides
// how to react. Construction errors that indicate programmer mistakes
// (invalid dimensions, out-of-range parameters) assert in debug builds and
// return errors in release builds.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <variant>

namespace sieve {

/// Error category for Status. Kept deliberately small: the library reports
/// *what class* of failure occurred; the message carries specifics.
enum class ErrorCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kCorruptData,
  kNotFound,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
  kUnavailable,        ///< transient transport failure (retryable)
  kDeadlineExceeded,   ///< gave up: the per-message deadline passed
  kCancelled,          ///< interrupted by shutdown/cancel
};

/// Human-readable name for an ErrorCode (stable, for logs and tests).
constexpr const char* ErrorCodeName(ErrorCode c) noexcept {
  switch (c) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kCorruptData: return "CORRUPT_DATA";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kInternal: return "INTERNAL";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

/// A status: OK or an (code, message) pair. Cheap to copy when OK.
class [[nodiscard]] Status {
 public:
  Status() noexcept = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() noexcept { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(ErrorCode::kInvalidArgument, std::move(msg));
  }
  static Status Corrupt(std::string msg) {
    return Status(ErrorCode::kCorruptData, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(ErrorCode::kNotFound, std::move(msg));
  }
  static Status Precondition(std::string msg) {
    return Status(ErrorCode::kFailedPrecondition, std::move(msg));
  }
  static Status Exhausted(std::string msg) {
    return Status(ErrorCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(ErrorCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(ErrorCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(ErrorCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(ErrorCode::kCancelled, std::move(msg));
  }

  bool ok() const noexcept { return code_ == ErrorCode::kOk; }
  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(ErrorCodeName(code_)) + ": " + message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

/// Expected<T>: either a value or a Status error. Minimal std::expected
/// stand-in (the toolchain's libstdc++ predates full std::expected support).
template <typename T>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::move(value)) {}           // NOLINT(google-explicit-constructor)
  Expected(Status status) : data_(std::move(status)) {     // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(data_).ok() &&
           "Expected<T> must not be constructed from an OK status");
  }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace sieve
