#include "common/bytes.h"

#include <cstdio>
#include <cstring>

namespace sieve {

void ByteWriter::PutU16(std::uint16_t v) {
  PutU8(static_cast<std::uint8_t>(v & 0xFF));
  PutU8(static_cast<std::uint8_t>(v >> 8));
}

void ByteWriter::PutU32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) PutU8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::PutU64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) PutU8(static_cast<std::uint8_t>((v >> (8 * i)) & 0xFF));
}

void ByteWriter::PutF32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU32(bits);
}

void ByteWriter::PutF64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  PutU64(bits);
}

void ByteWriter::PutVarint(std::uint64_t v) {
  while (v >= 0x80) {
    PutU8(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  PutU8(static_cast<std::uint8_t>(v));
}

void ByteWriter::PutBytes(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

void ByteWriter::PutString(const std::string& s) {
  PutVarint(s.size());
  PutBytes(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

Expected<std::uint8_t> ByteReader::GetU8() {
  if (pos_ >= data_.size()) return Status::Corrupt("ByteReader: read past end");
  return data_[pos_++];
}

Expected<std::uint16_t> ByteReader::GetU16() {
  if (remaining() < 2) return Status::Corrupt("ByteReader: read past end (u16)");
  std::uint16_t v = std::uint16_t(data_[pos_]) | std::uint16_t(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Expected<std::uint32_t> ByteReader::GetU32() {
  if (remaining() < 4) return Status::Corrupt("ByteReader: read past end (u32)");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Expected<std::uint64_t> ByteReader::GetU64() {
  if (remaining() < 8) return Status::Corrupt("ByteReader: read past end (u64)");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Expected<float> ByteReader::GetF32() {
  auto bits = GetU32();
  if (!bits.ok()) return bits.status();
  float v;
  std::uint32_t b = bits.value();
  std::memcpy(&v, &b, sizeof v);
  return v;
}

Expected<double> ByteReader::GetF64() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  std::uint64_t b = bits.value();
  std::memcpy(&v, &b, sizeof v);
  return v;
}

Expected<std::uint64_t> ByteReader::GetVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    auto byte = GetU8();
    if (!byte.ok()) return byte.status();
    v |= std::uint64_t(byte.value() & 0x7F) << shift;
    if (!(byte.value() & 0x80)) break;
    shift += 7;
    if (shift >= 64) return Status::Corrupt("ByteReader: varint too long");
  }
  return v;
}

Expected<std::string> ByteReader::GetString() {
  auto len = GetVarint();
  if (!len.ok()) return len.status();
  auto bytes = GetSpan(static_cast<std::size_t>(len.value()));
  if (!bytes.ok()) return bytes.status();
  return std::string(reinterpret_cast<const char*>(bytes->data()), bytes->size());
}

Expected<std::span<const std::uint8_t>> ByteReader::GetSpan(std::size_t n) {
  if (remaining() < n) return Status::Corrupt("ByteReader: span past end");
  auto out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

Status ByteReader::Skip(std::size_t n) {
  if (remaining() < n) return Status::Corrupt("ByteReader: skip past end");
  pos_ += n;
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path,
                      std::span<const std::uint8_t> bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) return Status::NotFound("cannot open for write: " + path);
  const std::size_t written = bytes.empty()
                                  ? 0
                                  : std::fwrite(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (written != bytes.size()) return Status::Internal("short write: " + path);
  return Status::Ok();
}

Expected<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return Status::NotFound("cannot open for read: " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fseek(f, 0, SEEK_SET);
  std::vector<std::uint8_t> buf(size > 0 ? static_cast<std::size_t>(size) : 0);
  const std::size_t read = buf.empty() ? 0 : std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (read != buf.size()) return Status::Corrupt("short read: " + path);
  return buf;
}

}  // namespace sieve
