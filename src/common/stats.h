// Online statistics accumulators used by benchmarks, the DES, and metrics.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace sieve {

/// Welford online mean/variance with min/max tracking.
class RunningStats {
 public:
  void Add(double x) noexcept;
  void Merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double variance() const noexcept { return n_ > 1 ? m2_ / double(n_ - 1) : 0.0; }
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  double sum() const noexcept { return sum_; }

  std::string ToString() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Reservoir of samples supporting exact quantiles; bounded memory via
/// optional capacity (uniform reservoir sampling beyond capacity).
class QuantileSketch {
 public:
  explicit QuantileSketch(std::size_t capacity = 0) : capacity_(capacity) {}

  void Add(double x);
  /// q in [0, 1]; returns 0 when empty. Linear interpolation between ranks.
  double Quantile(double q) const;
  std::size_t count() const noexcept { return total_; }

 private:
  std::size_t capacity_;         // 0 == unbounded
  std::size_t total_ = 0;
  std::uint64_t rng_state_ = 0x9E3779B97F4A7C15ULL;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Fixed-bucket histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets. Used for latency distribution reporting.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x) noexcept;
  std::size_t bucket_count() const noexcept { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  std::uint64_t total() const noexcept { return total_; }
  std::string Render(std::size_t width = 40) const;

 private:
  double lo_, hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace sieve
