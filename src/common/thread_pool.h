// Fixed-size thread pool used by the dataflow engine and parallel sweeps.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sieve {

/// A fixed-size pool of worker threads executing submitted tasks FIFO.
/// Destruction drains outstanding tasks before joining (graceful shutdown).
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; returns a future for its completion.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      tasks_.push([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Run fn(i) for i in [0, n) across the pool and wait for all to finish.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  std::size_t size() const noexcept { return workers_.size(); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace sieve
