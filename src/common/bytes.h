// Byte-buffer writer/reader with varint and fixed-width little-endian codecs.
//
// Used by the video container, NN activation serialization, and the network
// message framing. All multi-byte integers are little-endian on the wire.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"

namespace sieve {

/// Append-only byte sink.
class ByteWriter {
 public:
  void PutU8(std::uint8_t v) { buf_.push_back(v); }
  void PutU16(std::uint16_t v);
  void PutU32(std::uint32_t v);
  void PutU64(std::uint64_t v);
  void PutF32(float v);
  void PutF64(double v);
  /// LEB128 unsigned varint.
  void PutVarint(std::uint64_t v);
  void PutBytes(std::span<const std::uint8_t> bytes);
  void PutString(const std::string& s);  // varint length + bytes

  const std::vector<std::uint8_t>& data() const noexcept { return buf_; }
  std::vector<std::uint8_t> Release() noexcept { return std::move(buf_); }
  std::size_t size() const noexcept { return buf_.size(); }
  void Clear() noexcept { buf_.clear(); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Sequential reader over a borrowed byte span. The span must outlive the
/// reader. All getters return Expected and never read past the end.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  Expected<std::uint8_t> GetU8();
  Expected<std::uint16_t> GetU16();
  Expected<std::uint32_t> GetU32();
  Expected<std::uint64_t> GetU64();
  Expected<float> GetF32();
  Expected<double> GetF64();
  Expected<std::uint64_t> GetVarint();
  Expected<std::string> GetString();

  /// Borrow n bytes without copying; advances the cursor.
  Expected<std::span<const std::uint8_t>> GetSpan(std::size_t n);

  Status Skip(std::size_t n);
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  std::size_t position() const noexcept { return pos_; }
  bool AtEnd() const noexcept { return pos_ == data_.size(); }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Write a whole buffer to a file, replacing it. Returns error on I/O failure.
Status WriteFileBytes(const std::string& path,
                      std::span<const std::uint8_t> bytes);

/// Read a whole file into memory.
Expected<std::vector<std::uint8_t>> ReadFileBytes(const std::string& path);

}  // namespace sieve
