// Wall-clock stopwatch used by the calibration and benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace sieve {

/// Monotonic stopwatch. Start() resets; Elapsed*() read without stopping.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }
  double ElapsedMicros() const { return ElapsedSeconds() * 1e6; }
  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sieve
