// Bounded MPMC blocking queue — the engine's "connection" with backpressure.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>

namespace sieve::dataflow {

/// Bounded blocking queue. Push blocks when full (backpressure); Pop blocks
/// when empty until an item arrives or the queue is closed and drained.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity ? capacity : 1) {}

  /// Blocking push; returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    peak_depth_ = std::max(peak_depth_, items_.size());
    depth_sum_ += items_.size();
    ++pushed_;
    not_empty_.notify_one();
    return true;
  }

  /// Blocking pop; std::nullopt once closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// No more pushes will be accepted; pending items remain poppable.
  void Close() {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t peak_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return peak_depth_;
  }
  std::size_t pushed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_;
  }
  /// Mean queue depth observed at push time (0 when nothing was pushed).
  /// Near-capacity values mean this connection's consumer is the
  /// bottleneck; near-zero means it keeps up.
  double avg_depth() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return pushed_ > 0 ? double(depth_sum_) / double(pushed_) : 0.0;
  }
  std::size_t capacity() const noexcept { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
  std::size_t peak_depth_ = 0;
  std::size_t pushed_ = 0;
  std::uint64_t depth_sum_ = 0;  ///< summed post-push depths (avg_depth)
};

}  // namespace sieve::dataflow
