// FlowFile: the unit of data moving through the dataflow engine.
//
// Mirrors Apache NiFi's FlowFile: an opaque payload plus string attributes
// (provenance, frame metadata). The engine never interprets payloads;
// processors do.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace sieve::dataflow {

class FlowFile {
 public:
  FlowFile() = default;
  explicit FlowFile(std::vector<std::uint8_t> payload)
      : payload_(std::move(payload)) {}

  /// Per-frame trace identity (session track + frame index), stamped when
  /// the frame enters the flow and copied by processors that construct a
  /// fresh FlowFile, so every stage's span joins the same frame tree. A
  /// plain public member: it is provenance, not payload, and processors
  /// forward it wholesale.
  obs::TraceContext trace;

  const std::vector<std::uint8_t>& payload() const noexcept { return payload_; }
  std::vector<std::uint8_t>& payload() noexcept { return payload_; }
  std::size_t size() const noexcept { return payload_.size(); }

  void SetAttribute(const std::string& key, std::string value) {
    attributes_[key] = std::move(value);
  }
  std::optional<std::string> GetAttribute(const std::string& key) const {
    auto it = attributes_.find(key);
    if (it == attributes_.end()) return std::nullopt;
    return it->second;
  }
  /// Numeric attribute helpers (frame indices, timestamps).
  void SetU64(const std::string& key, std::uint64_t value);
  std::optional<std::uint64_t> GetU64(const std::string& key) const;

  const std::map<std::string, std::string>& attributes() const noexcept {
    return attributes_;
  }

 private:
  std::vector<std::uint8_t> payload_;
  std::map<std::string, std::string> attributes_;
};

}  // namespace sieve::dataflow
