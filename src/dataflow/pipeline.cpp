#include "dataflow/pipeline.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/stopwatch.h"

namespace sieve::dataflow {

void Pipeline::SetSource(std::string name, SourceFn source) {
  source_name_ = std::move(name);
  source_ = std::move(source);
}

void Pipeline::AddStage(std::string name, TransformFn transform,
                        int parallelism) {
  stages_.push_back(StageSpec{std::move(name), std::move(transform),
                              std::max(1, parallelism)});
}

void Pipeline::SetSink(std::string name, SinkFn sink) {
  sink_name_ = std::move(name);
  sink_ = std::move(sink);
}

Expected<std::vector<StageStats>> Pipeline::Run() {
  if (!source_) return Status::Precondition("Pipeline: no source set");
  if (!sink_) return Status::Precondition("Pipeline: no sink set");

  const std::size_t num_queues = stages_.size() + 1;
  std::vector<std::unique_ptr<BoundedQueue<FlowFile>>> queues;
  queues.reserve(num_queues);
  for (std::size_t i = 0; i < num_queues; ++i) {
    queues.push_back(std::make_unique<BoundedQueue<FlowFile>>(queue_capacity_));
  }

  std::vector<StageStats> stats(stages_.size() + 2);
  stats.front().name = source_name_;
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stats[i + 1].name = stages_[i].name;
  }
  stats.back().name = sink_name_;
  std::mutex stats_mutex;

  std::vector<std::thread> threads;

  // Source thread feeds queue 0.
  threads.emplace_back([this, &queues, &stats, &stats_mutex] {
    Stopwatch watch;
    std::size_t produced = 0;
    for (;;) {
      watch.Start();
      std::optional<FlowFile> item = source_();
      const double elapsed = watch.ElapsedSeconds();
      {
        std::lock_guard<std::mutex> lock(stats_mutex);
        stats.front().busy_seconds += elapsed;
      }
      if (!item) break;
      if (!queues.front()->Push(std::move(*item))) break;
      ++produced;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex);
      stats.front().out = produced;
      stats.front().in = produced;
    }
    queues.front()->Close();
  });

  // Transform stages: queue i -> queue i+1, with per-stage worker counts.
  // Each stage closes its output only after all its workers finish.
  std::vector<std::unique_ptr<std::atomic<int>>> live_workers;
  live_workers.reserve(stages_.size());
  for (const auto& stage : stages_) {
    live_workers.push_back(std::make_unique<std::atomic<int>>(stage.parallelism));
  }

  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (int w = 0; w < stages_[s].parallelism; ++w) {
      threads.emplace_back([this, s, &queues, &stats, &stats_mutex,
                            &live_workers] {
        BoundedQueue<FlowFile>& in = *queues[s];
        BoundedQueue<FlowFile>& out = *queues[s + 1];
        std::size_t consumed = 0, emitted = 0;
        double busy = 0;
        Stopwatch watch;
        for (;;) {
          std::optional<FlowFile> item = in.Pop();
          if (!item) break;
          ++consumed;
          watch.Start();
          std::optional<FlowFile> result = stages_[s].transform(std::move(*item));
          busy += watch.ElapsedSeconds();
          if (result) {
            if (!out.Push(std::move(*result))) break;
            ++emitted;
          }
        }
        {
          std::lock_guard<std::mutex> lock(stats_mutex);
          stats[s + 1].in += consumed;
          stats[s + 1].out += emitted;
          stats[s + 1].busy_seconds += busy;
          stats[s + 1].peak_queue =
              std::max(stats[s + 1].peak_queue, in.peak_depth());
        }
        if (live_workers[s]->fetch_sub(1) == 1) out.Close();
      });
    }
  }

  // Sink thread drains the last queue.
  threads.emplace_back([this, &queues, &stats, &stats_mutex] {
    BoundedQueue<FlowFile>& in = *queues.back();
    std::size_t consumed = 0;
    double busy = 0;
    Stopwatch watch;
    for (;;) {
      std::optional<FlowFile> item = in.Pop();
      if (!item) break;
      ++consumed;
      watch.Start();
      sink_(std::move(*item));
      busy += watch.ElapsedSeconds();
    }
    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.back().in = consumed;
    stats.back().out = consumed;
    stats.back().busy_seconds = busy;
    stats.back().peak_queue = in.peak_depth();
  });

  for (auto& t : threads) t.join();
  return stats;
}

}  // namespace sieve::dataflow
