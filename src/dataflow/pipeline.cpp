#include "dataflow/pipeline.h"

#include <atomic>
#include <cassert>
#include <condition_variable>

#include "common/stopwatch.h"
#include "obs/trace.h"
#include "runtime/executor.h"

namespace sieve::dataflow {

// Sequencing state of one ordered stage. Pops are serialized under
// pop_mutex so the sequence numbers mirror the inbound queue order; emits
// wait under emit_mutex until their turn, so the outbound queue sees the
// inbound order even with N workers transforming concurrently. A filtered
// item (transform returned nullopt) still advances the emit cursor.
struct Pipeline::OrderedGate {
  std::mutex pop_mutex;
  std::mutex emit_mutex;
  std::condition_variable emit_cv;
  std::uint64_t next_pop = 0;
  std::uint64_t next_emit = 0;
};

Pipeline::Pipeline(std::size_t queue_capacity, runtime::Executor* executor)
    : queue_capacity_(queue_capacity), executor_(executor) {}

Pipeline::~Pipeline() {
  bool need_finish = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    need_finish = started_ && !finishing_;
  }
  // Best-effort drain on destruction; sources must terminate for this to
  // return (the same contract Finish() documents).
  if (need_finish) (void)Finish();
}

void Pipeline::SetSource(std::string name, SourceFn source) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Configuration is frozen once started: clearing sources_ here would free
  // SourceSpecs live workers still write to (and destroy joinable threads).
  // Post-start attachment goes through AttachSource.
  assert(!started_ && "Pipeline: SetSource after Start()");
  if (started_) return;
  sources_.clear();
  auto spec = std::make_unique<SourceSpec>();
  spec->name = std::move(name);
  spec->fn = std::move(source);
  sources_.push_back(std::move(spec));
}

void Pipeline::AddSource(std::string name, SourceFn source) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(!started_ && "Pipeline: AddSource after Start(); use AttachSource");
  if (started_) return;
  auto spec = std::make_unique<SourceSpec>();
  spec->name = std::move(name);
  spec->fn = std::move(source);
  sources_.push_back(std::move(spec));
}

void Pipeline::AddStage(std::string name, TransformFn transform,
                        int parallelism, bool ordered) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Same freeze contract as the source mutators: live workers index into
  // stages_, so growing it mid-flight would race a vector reallocation.
  assert(!started_ && "Pipeline: AddStage after Start()");
  if (started_) return;
  stages_.push_back(StageSpec{std::move(name), std::move(transform),
                              std::max(1, parallelism), ordered});
}

void Pipeline::SetSink(std::string name, SinkFn sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  assert(!started_ && "Pipeline: SetSink after Start()");
  if (started_) return;
  sink_name_ = std::move(name);
  sink_ = std::move(sink);
}

void Pipeline::StartSourceLocked(SourceSpec& spec) {
  spec.worker = executor_->SpawnWorker([this, &spec] {
    Stopwatch watch;
    for (;;) {
      watch.Start();
      std::optional<FlowFile> item = spec.fn();
      spec.busy_seconds += watch.ElapsedSeconds();
      if (!item) break;
      if (!queues_.front()->Push(std::move(*item))) break;
      ++spec.produced;
    }
  });
}

Status Pipeline::Start() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (started_) return Status::Precondition("Pipeline: already started");
  if (!sink_) return Status::Precondition("Pipeline: no sink set");
  started_ = true;
  if (executor_ == nullptr) executor_ = &runtime::SharedExecutor();

  const std::size_t num_queues = stages_.size() + 1;
  queues_.reserve(num_queues);
  for (std::size_t i = 0; i < num_queues; ++i) {
    queues_.push_back(std::make_unique<BoundedQueue<FlowFile>>(queue_capacity_));
  }

  stage_stats_.resize(stages_.size() + 1);
  stage_trace_names_.reserve(stages_.size());
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stage_stats_[i].name = stages_[i].name;
    stage_stats_[i].workers = std::size_t(stages_[i].parallelism);
    stage_trace_names_.push_back(obs::InternName("stage/" + stages_[i].name));
  }
  stage_stats_.back().name = sink_name_;
  stage_stats_.back().workers = 1;
  sink_trace_name_ = obs::InternName("stage/" + sink_name_);

  // Transform stages: queue i -> queue i+1, with per-stage worker counts.
  // Each stage closes its output only after all its workers finish.
  live_workers_.reserve(stages_.size());
  gates_.reserve(stages_.size());
  for (const auto& stage : stages_) {
    live_workers_.push_back(std::make_unique<std::atomic<int>>(stage.parallelism));
    gates_.push_back(stage.ordered && stage.parallelism > 1
                         ? std::make_unique<OrderedGate>()
                         : nullptr);
  }
  for (std::size_t s = 0; s < stages_.size(); ++s) {
    for (int w = 0; w < stages_[s].parallelism; ++w) {
      workers_.push_back(executor_->SpawnWorker([this, s] {
        BoundedQueue<FlowFile>& in = *queues_[s];
        BoundedQueue<FlowFile>& out = *queues_[s + 1];
        OrderedGate* gate = gates_[s].get();
        std::size_t consumed = 0, emitted = 0;
        double busy = 0;
        Stopwatch watch;
        for (;;) {
          std::optional<FlowFile> item;
          std::uint64_t seq = 0;
          if (gate != nullptr) {
            // Serialize pop + sequence claim: seq order == queue order, so
            // a worker can only ever wait on seqs other workers are already
            // processing (no circular wait).
            std::lock_guard<std::mutex> pop_lock(gate->pop_mutex);
            item = in.Pop();
            if (item) seq = gate->next_pop++;
          } else {
            item = in.Pop();
          }
          if (!item) break;
          ++consumed;
          watch.Start();
          std::optional<FlowFile> result;
          if (obs::TracingEnabled()) {
            // Capture the frame identity before the move; end the span
            // before the push so it strictly precedes downstream pops in
            // the trace (causal ordering per frame).
            const obs::TraceContext ctx = item->trace;
            const std::uint64_t t0 = obs::NowMicros();
            result = stages_[s].transform(std::move(*item));
            obs::RecordSpan(stage_trace_names_[s], ctx, t0, obs::NowMicros());
          } else {
            result = stages_[s].transform(std::move(*item));
          }
          busy += watch.ElapsedSeconds();
          if (gate != nullptr) {
            bool push_failed = false;
            {
              std::unique_lock<std::mutex> emit_lock(gate->emit_mutex);
              gate->emit_cv.wait(emit_lock,
                                 [&] { return gate->next_emit == seq; });
              if (result) {
                // The push happens under emit_mutex: emit order is pop
                // order even when the outbound queue is contended.
                if (out.Push(std::move(*result))) {
                  ++emitted;
                } else {
                  push_failed = true;
                }
              }
              ++gate->next_emit;
            }
            gate->emit_cv.notify_all();
            if (push_failed) break;
          } else if (result) {
            if (!out.Push(std::move(*result))) break;
            ++emitted;
          }
        }
        {
          std::lock_guard<std::mutex> stats_lock(stats_mutex_);
          stage_stats_[s].in += consumed;
          stage_stats_[s].out += emitted;
          stage_stats_[s].busy_seconds += busy;
          stage_stats_[s].peak_queue =
              std::max(stage_stats_[s].peak_queue, in.peak_depth());
          stage_stats_[s].avg_queue = in.avg_depth();
        }
        if (live_workers_[s]->fetch_sub(1) == 1) out.Close();
      }));
    }
  }

  // Sink worker drains the last queue.
  workers_.push_back(executor_->SpawnWorker([this] {
    BoundedQueue<FlowFile>& in = *queues_.back();
    std::size_t consumed = 0;
    double busy = 0;
    Stopwatch watch;
    for (;;) {
      std::optional<FlowFile> item = in.Pop();
      if (!item) break;
      ++consumed;
      watch.Start();
      if (obs::TracingEnabled()) {
        const obs::TraceContext ctx = item->trace;
        const std::uint64_t t0 = obs::NowMicros();
        sink_(std::move(*item));
        obs::RecordSpan(sink_trace_name_, ctx, t0, obs::NowMicros());
      } else {
        sink_(std::move(*item));
      }
      busy += watch.ElapsedSeconds();
    }
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    stage_stats_.back().in = consumed;
    stage_stats_.back().out = consumed;
    stage_stats_.back().busy_seconds = busy;
    stage_stats_.back().peak_queue = in.peak_depth();
    stage_stats_.back().avg_queue = in.avg_depth();
  }));

  for (auto& source : sources_) StartSourceLocked(*source);
  return Status::Ok();
}

Status Pipeline::AttachSource(std::string name, SourceFn source) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (finishing_) {
    return Status::Precondition("Pipeline: cannot attach a source while finishing");
  }
  auto spec = std::make_unique<SourceSpec>();
  spec->name = std::move(name);
  spec->fn = std::move(source);
  sources_.push_back(std::move(spec));
  if (started_) StartSourceLocked(*sources_.back());
  return Status::Ok();
}

Expected<std::vector<StageStats>> Pipeline::Finish() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!started_) return Status::Precondition("Pipeline: not started");
    if (finishing_) {
      return Status::Precondition("Pipeline: Finish() already invoked");
    }
    finishing_ = true;  // freezes sources_: AttachSource refuses from here on
  }

  // Wait for every source to exhaust, then cascade the close downstream.
  for (auto& source : sources_) {
    if (source->worker.joinable()) source->worker.join();
  }
  queues_.front()->Close();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }

  std::vector<StageStats> stats;
  stats.reserve(sources_.size() + stage_stats_.size());
  for (const auto& source : sources_) {
    StageStats s;
    s.name = source->name;
    s.in = source->produced;
    s.out = source->produced;
    s.busy_seconds = source->busy_seconds;
    s.has_queue = false;  // sources pull, they have no inbound connection
    stats.push_back(std::move(s));
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mutex_);
    for (const auto& s : stage_stats_) stats.push_back(s);
  }
  return stats;
}

Expected<std::vector<StageStats>> Pipeline::Run() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (started_) {
      // Source and stat state are consumed by the first run; rerunning would
      // silently produce an empty, misleading flow.
      return Status::Precondition("Pipeline: Run() already invoked");
    }
    if (sources_.empty()) return Status::Precondition("Pipeline: no source set");
  }
  if (Status s = Start(); !s.ok()) return s;
  return Finish();
}

}  // namespace sieve::dataflow
