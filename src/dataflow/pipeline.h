// The dataflow engine: a NiFi-style processor pipeline.
//
// A Pipeline is a linear chain: one source, any number of transform stages,
// one sink. Each stage owns worker threads pulling from its inbound bounded
// connection (backpressure propagates upstream automatically) and pushing
// to the next. Run() executes the whole flow to completion and reports
// per-stage statistics. The edge and cloud compute engines of Figure 1 are
// each one Pipeline; the orchestration layer (Echo in the paper) wires
// their queues together through a RealizedLink stage.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "dataflow/bounded_queue.h"
#include "dataflow/flow_file.h"

namespace sieve::dataflow {

/// Per-stage execution statistics.
struct StageStats {
  std::string name;
  std::size_t in = 0;          ///< items consumed
  std::size_t out = 0;         ///< items emitted (in - filtered)
  double busy_seconds = 0.0;   ///< summed processing wall time
  std::size_t peak_queue = 0;  ///< peak inbound queue depth
};

/// A source yields items until exhausted (std::nullopt).
using SourceFn = std::function<std::optional<FlowFile>()>;
/// A transform maps an item to an output or filters it (std::nullopt).
using TransformFn = std::function<std::optional<FlowFile>(FlowFile)>;
/// A sink consumes items.
using SinkFn = std::function<void(FlowFile)>;

class Pipeline {
 public:
  /// `queue_capacity` bounds every inter-stage connection.
  explicit Pipeline(std::size_t queue_capacity = 16)
      : queue_capacity_(queue_capacity) {}

  void SetSource(std::string name, SourceFn source);
  void AddStage(std::string name, TransformFn transform, int parallelism = 1);
  void SetSink(std::string name, SinkFn sink);

  /// Runs the flow to completion (source exhausted, queues drained).
  /// Returns per-stage stats in order: source, stages..., sink.
  Expected<std::vector<StageStats>> Run();

 private:
  struct StageSpec {
    std::string name;
    TransformFn transform;
    int parallelism = 1;
  };

  std::size_t queue_capacity_;
  std::string source_name_;
  SourceFn source_;
  std::vector<StageSpec> stages_;
  std::string sink_name_;
  SinkFn sink_;
};

}  // namespace sieve::dataflow
