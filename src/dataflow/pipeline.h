// The dataflow engine: a NiFi-style processor pipeline.
//
// A Pipeline is a fan-in chain: one or more sources, any number of transform
// stages, one sink. Each stage owns worker threads pulling from its inbound
// bounded connection (backpressure propagates upstream automatically) and
// pushing to the next. Sources merge into the first stage's connection, so N
// camera feeds share one edge chain while each source blocks independently
// when the chain is saturated. The edge and cloud compute engines of
// Figure 1 are each one Pipeline; the orchestration layer (Echo in the
// paper) wires their queues together through a RealizedLink stage.
//
// Two execution modes:
//   * Batch: configure everything, then Run() executes the whole flow to
//     completion and reports per-stage statistics. Run() is one-shot — a
//     second invocation returns an error instead of silently re-running
//     with consumed source state.
//   * Streaming: Start() launches the stage/sink workers immediately;
//     sources may then be attached while the flow is live (AttachSource —
//     this is how the runtime plugs newly opened camera sessions into the
//     shared edge tier), and Finish() waits for every source to exhaust,
//     drains the queues, and returns the statistics.
//
// Worker threads are obtained from an injected runtime::Executor
// (SpawnWorker), so the engine itself never constructs raw threads.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "dataflow/bounded_queue.h"
#include "dataflow/flow_file.h"

namespace sieve::runtime {
class Executor;
}

namespace sieve::dataflow {

/// Per-stage execution statistics.
struct StageStats {
  std::string name;
  std::size_t in = 0;          ///< items consumed
  std::size_t out = 0;         ///< items emitted (in - filtered)
  double busy_seconds = 0.0;   ///< summed processing wall time
  std::size_t peak_queue = 0;  ///< peak inbound queue depth
  /// Mean inbound queue depth at push time. Together with peak_queue this
  /// is the fan-in profile: a stage whose average rides near the connection
  /// capacity is the pipeline's bottleneck (widen its `parallelism`), one
  /// near zero keeps up with upstream.
  double avg_queue = 0.0;
  std::size_t workers = 1;     ///< worker threads this stage ran with
  /// False for sources: they have no inbound queue, so peak_queue/avg_queue
  /// are meaningless for them — exporters print `n/a` instead of a
  /// misleading 0 (obs::FormatStageStats) and skip the queue gauges.
  bool has_queue = true;
};

/// A source yields items until exhausted (std::nullopt).
using SourceFn = std::function<std::optional<FlowFile>()>;
/// A transform maps an item to an output or filters it (std::nullopt).
using TransformFn = std::function<std::optional<FlowFile>(FlowFile)>;
/// A sink consumes items.
using SinkFn = std::function<void(FlowFile)>;

class Pipeline {
 public:
  /// `queue_capacity` bounds every inter-stage connection. `executor`
  /// provides the worker threads (null = runtime::SharedExecutor()).
  explicit Pipeline(std::size_t queue_capacity = 16,
                    runtime::Executor* executor = nullptr);
  ~Pipeline();

  Pipeline(const Pipeline&) = delete;
  Pipeline& operator=(const Pipeline&) = delete;

  /// Replace the source set with this single source (legacy single-camera
  /// shape). Configuration only — call before Start()/Run(); afterwards it
  /// asserts (debug) / is ignored (release). Use AttachSource on a live flow.
  void SetSource(std::string name, SourceFn source);
  /// Add one of several sources; all sources fan into the first stage.
  /// Same pre-start contract as SetSource.
  void AddSource(std::string name, SourceFn source);
  /// Add a transform stage with `parallelism` workers. With `ordered` set,
  /// a parallel stage emits items in exactly the order it consumed them
  /// (workers claim a sequence number with their pop and wait their turn to
  /// push), so downstream serial stages observe the inbound order — the
  /// still-transcode tier uses this to scale workers without reordering any
  /// camera's frames. ordered is a no-op at parallelism 1.
  void AddStage(std::string name, TransformFn transform, int parallelism = 1,
                bool ordered = false);
  void SetSink(std::string name, SinkFn sink);

  /// Batch mode: runs the flow to completion (sources exhausted, queues
  /// drained). Returns per-stage stats in order: sources (in registration
  /// order), stages..., sink. One-shot: a second call returns an error.
  Expected<std::vector<StageStats>> Run();

  // --- Streaming mode ------------------------------------------------------

  /// Launch stage and sink workers (and any sources registered so far).
  /// After Start(), AttachSource() may add live sources until Finish().
  Status Start();

  /// Attach a source to the running flow and start pumping it immediately.
  /// Also usable before Start() (equivalent to AddSource).
  Status AttachSource(std::string name, SourceFn source);

  /// Wait for every attached source to exhaust, drain all queues, stop the
  /// workers, and return the statistics. The caller is responsible for
  /// making sources terminate (e.g. closing the session queues they pop).
  Expected<std::vector<StageStats>> Finish();

 private:
  struct SourceSpec {
    std::string name;
    SourceFn fn;
    std::size_t produced = 0;
    double busy_seconds = 0.0;
    std::thread worker;  ///< joinable only once started
  };
  struct StageSpec {
    std::string name;
    TransformFn transform;
    int parallelism = 1;
    bool ordered = false;
  };
  struct OrderedGate;  ///< pop/emit sequencing state of an ordered stage

  void StartSourceLocked(SourceSpec& spec);

  std::size_t queue_capacity_;
  runtime::Executor* executor_;
  std::vector<std::unique_ptr<SourceSpec>> sources_;  ///< stable addresses
  std::vector<StageSpec> stages_;
  std::string sink_name_;
  SinkFn sink_;

  std::mutex mutex_;               ///< guards sources_ growth + state flags
  bool started_ = false;
  bool finishing_ = false;

  /// Interned c_str stage names for trace spans (events may outlive the
  /// Pipeline; interned pointers outlive everything).
  std::vector<const char*> stage_trace_names_;
  const char* sink_trace_name_ = nullptr;

  std::vector<std::unique_ptr<BoundedQueue<FlowFile>>> queues_;
  std::vector<std::unique_ptr<OrderedGate>> gates_;  ///< one per ordered stage
  std::vector<std::thread> workers_;            ///< stage + sink workers
  std::vector<StageStats> stage_stats_;         ///< stages..., sink
  std::mutex stats_mutex_;
  std::vector<std::unique_ptr<std::atomic<int>>> live_workers_;
};

}  // namespace sieve::dataflow
