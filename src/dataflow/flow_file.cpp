#include "dataflow/flow_file.h"

#include <cstdlib>

namespace sieve::dataflow {

void FlowFile::SetU64(const std::string& key, std::uint64_t value) {
  SetAttribute(key, std::to_string(value));
}

std::optional<std::uint64_t> FlowFile::GetU64(const std::string& key) const {
  auto s = GetAttribute(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s->c_str(), &end, 10);
  if (end == s->c_str()) return std::nullopt;
  return std::uint64_t(v);
}

}  // namespace sieve::dataflow
