// Section IV / V-A evaluation metrics: accuracy, sample size, filtering
// rate, and the accuracy-filtering F1 score.
#pragma once

#include <cstddef>
#include <vector>

#include "synth/ground_truth.h"

namespace sieve::core {

/// Quality of a frame-selection strategy against ground truth.
struct DetectionQuality {
  double accuracy = 0.0;       ///< per-frame propagated label accuracy (acc_i)
  double sample_rate = 0.0;    ///< selected / total (the paper's SS)
  double filtering_rate = 0.0; ///< non-selected / total (fr_i)
  double f1 = 0.0;             ///< harmonic mean of accuracy and filtering rate
};

/// Harmonic mean; 0 when either input is 0.
double HarmonicMean(double a, double b) noexcept;

/// Evaluate a selection given as per-frame flags (e.g. keyframe placement).
DetectionQuality EvaluateKeyframes(const synth::GroundTruth& truth,
                                   const std::vector<bool>& is_selected);

/// Evaluate a selection given as sorted frame indices.
DetectionQuality EvaluateSelection(const synth::GroundTruth& truth,
                                   const std::vector<std::size_t>& selected);

}  // namespace sieve::core
