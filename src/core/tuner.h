// The offline semantic-encoder tuner (Section IV, Figure 2).
//
// Given labelled historical video from a camera, the tuner explores a k x l
// grid of (GOP size, scenecut threshold) configurations, scores each by the
// F1 of event-detection accuracy and filtering rate, and stores the argmax
// in a per-camera lookup table used for all future live encoding.
//
// One analysis pass computes per-frame costs; every grid cell then replays
// keyframe placement in O(frames) — the encoder makes the identical
// decision inline, so tuner predictions and real encodes agree exactly
// (tested in tests/core/tuner_test.cpp).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "codec/analysis.h"
#include "common/status.h"
#include "core/metrics.h"
#include "media/frame.h"
#include "synth/ground_truth.h"

namespace sieve::core {

/// Grid of configurations to explore (defaults: the paper's k = l = 5).
struct TunerGrid {
  std::vector<int> gop_sizes{100, 250, 500, 1000, 5000};
  std::vector<int> scenecuts{20, 40, 100, 200, 250};

  /// Wider scenecut ladder for long-shot feeds with very small objects: a
  /// small object changes a small fraction of macroblocks, so its inter/intra
  /// ratio is bounded by its area fraction and the usable thresholds crowd
  /// into the high-sensitivity end of the scale.
  static TunerGrid Extended() {
    TunerGrid g;
    g.scenecuts = {40, 100, 200, 250, 300, 315, 325, 340, 350};
    return g;
  }
};

/// One evaluated grid cell.
struct TuningCandidate {
  int gop_size = 0;
  int scenecut = 0;
  DetectionQuality quality;
};

struct TuningResult {
  TuningCandidate best;
  std::vector<TuningCandidate> all;  ///< every cell, grid order
};

/// Run the Section-IV grid search on a labelled training video.
TuningResult TuneEncoder(const media::RawVideo& training_video,
                         const synth::GroundTruth& truth,
                         const TunerGrid& grid = {},
                         const codec::AnalysisParams& analysis = {});

/// Same, starting from precomputed analysis costs (lets callers share one
/// analysis pass across experiments).
TuningResult TuneFromCosts(const std::vector<codec::FrameCost>& costs,
                           const synth::GroundTruth& truth,
                           const TunerGrid& grid = {});

/// Per-camera lookup table of tuned parameters (Figure 1's "best
/// configuration" store). Serializes to a simple text format.
class CameraParameterTable {
 public:
  void Set(const std::string& camera_id, codec::KeyframeParams params);
  Expected<codec::KeyframeParams> Get(const std::string& camera_id) const;
  bool Contains(const std::string& camera_id) const;
  std::size_t size() const noexcept { return table_.size(); }

  std::string Serialize() const;
  static Expected<CameraParameterTable> Deserialize(const std::string& text);

 private:
  std::map<std::string, codec::KeyframeParams> table_;
};

}  // namespace sieve::core
