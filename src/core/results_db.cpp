#include "core/results_db.h"

#include <cstdio>
#include <cstdlib>

namespace sieve::core {

std::vector<std::pair<std::size_t, std::size_t>> ClassIntervals(
    const std::map<std::size_t, synth::LabelSet>& rows,
    synth::ObjectClass cls) {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  bool open = false;
  std::size_t start = 0;
  for (const auto& [frame, labels] : rows) {
    if (labels.Contains(cls) && !open) {
      open = true;
      start = frame;
    } else if (!labels.Contains(cls) && open) {
      ranges.emplace_back(start, frame);
      open = false;
    }
  }
  if (open) ranges.emplace_back(start, kOpenInterval);
  return ranges;
}

void ResultsDatabase::Insert(std::size_t frame_id, synth::LabelSet labels) {
  inserted_ = true;
  rows_[frame_id] = labels;
  if (observer_) observer_(*this, frame_id, labels);
}

void ResultsDatabase::set_observer(InsertObserver observer) {
  if (observer && inserted_) {
    // A late observer has already missed rows; every downstream consumer
    // (query index, journal) would silently diverge from the database.
    // This is a wiring bug, not a runtime condition — fail loudly.
    std::fprintf(stderr,
                 "ResultsDatabase::set_observer: observer installed after "
                 "first Insert (%zu rows already unobserved)\n",
                 rows_.size());
    std::abort();
  }
  observer_ = std::move(observer);
}

Status ResultsDatabase::Restore(std::map<std::size_t, synth::LabelSet> rows) {
  if (!rows_.empty() || inserted_) {
    return Status::Precondition("ResultsDatabase::Restore: database not empty");
  }
  if (observer_) {
    return Status::Precondition(
        "ResultsDatabase::Restore: observer already installed");
  }
  rows_ = std::move(rows);
  return Status::Ok();
}

synth::LabelSet ResultsDatabase::LabelAt(std::size_t frame_id) const {
  auto it = rows_.upper_bound(frame_id);
  if (it == rows_.begin()) return synth::LabelSet();
  --it;
  return it->second;
}

std::vector<std::pair<std::size_t, std::size_t>> ResultsDatabase::FindObject(
    synth::ObjectClass cls, std::size_t total_frames) const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges =
      ClassIntervals(rows_, cls);
  if (!ranges.empty() && ranges.back().second == kOpenInterval) {
    // An event still live at the last analyzed frame extends to the end of
    // the video; suppress the degenerate case where it opens exactly there.
    if (ranges.back().first < total_frames) {
      ranges.back().second = total_frames;
    } else {
      ranges.pop_back();
    }
  }
  return ranges;
}

}  // namespace sieve::core
