// SieveSystem: the legacy single-stream batch facade over the multi-camera
// runtime. Run() spins up a private runtime::Runtime, opens one session,
// replays a pre-encoded video through it, and maps the session report back
// onto the historical SystemReport shape. New code (camera fleets, live
// feeds) should use runtime::Runtime / SieveSession directly — see
// docs/runtime.md for the migration.
#pragma once

#include <cstdint>
#include <vector>

#include "codec/encoder.h"
#include "common/status.h"
#include "core/results_db.h"
#include "dataflow/pipeline.h"
#include "net/link.h"
#include "nn/classifier.h"

namespace sieve::core {

/// Where NN inference runs — the legacy placement knob of the single-stream
/// facade. SieveSystem::Run maps it onto a runtime::PlacementPlan; new code
/// sets runtime::SessionConfig::placement per camera instead.
enum class NnTier { kCloud, kEdge };

struct SystemConfig {
  NnTier nn_tier = NnTier::kCloud;
  net::LinkModel camera_to_edge = net::LinkModel::Lan();
  net::LinkModel edge_to_cloud = net::LinkModel::Wan();
  /// Wall-clock scale for link waits (0 = account bytes but never sleep;
  /// 1 = real time). Tests compress time; demos use small nonzero values.
  double link_time_scale = 0.0;
  int nn_input_size = 96;   ///< classifier input (even)
  int still_qp = 26;
  std::size_t queue_capacity = 8;  ///< the event queue bound (backpressure)
};

struct SystemReport {
  std::size_t frames_streamed = 0;    ///< frames leaving the camera
  std::size_t iframes_selected = 0;   ///< frames passing the seeker
  std::size_t labels_written = 0;     ///< rows in the results database
  double wall_seconds = 0.0;
  double fps = 0.0;                   ///< frames_streamed / wall_seconds
  std::uint64_t camera_to_edge_bytes = 0;
  std::uint64_t edge_to_cloud_bytes = 0;
  std::vector<dataflow::StageStats> stages;
};

/// The assembled system. The classifier must be fitted before Run().
class SieveSystem {
 public:
  SieveSystem(SystemConfig config, const nn::FrameClassifier* classifier)
      : config_(config), classifier_(classifier) {}

  /// Stream a pre-encoded semantic video through camera -> edge -> cloud.
  /// Results land in `db`.
  Expected<SystemReport> Run(const codec::EncodedVideo& video,
                             ResultsDatabase& db);

 private:
  SystemConfig config_;
  const nn::FrameClassifier* classifier_;
};

}  // namespace sieve::core
