// SieveSystem: the live 3-tier pipeline of Figure 1, assembled from real
// components — streaming semantic encoder (camera), I-frame seeker + event
// queue + still transcode (edge), WAN link, reference NN + results database
// (cloud) — running on the dataflow engine with real threads, real bytes,
// and a rate-enforced link. This is the integration path; paper-scale
// throughput studies use core/placements.h instead.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "codec/encoder.h"
#include "common/status.h"
#include "core/detectors.h"
#include "dataflow/pipeline.h"
#include "net/link.h"
#include "nn/classifier.h"
#include "synth/labels.h"

namespace sieve::core {

/// Where NN inference runs in the live pipeline.
enum class NnTier { kCloud, kEdge };

/// The cloud-side results store: (frame id, labels) tuples, queryable with
/// label propagation (Section III's output contract).
class ResultsDatabase {
 public:
  void Insert(std::size_t frame_id, synth::LabelSet labels);

  std::size_t size() const noexcept { return rows_.size(); }
  const std::map<std::size_t, synth::LabelSet>& rows() const noexcept {
    return rows_;
  }

  /// Label of an arbitrary frame: the labels of the latest analyzed frame at
  /// or before it (empty if none).
  synth::LabelSet LabelAt(std::size_t frame_id) const;

  /// Frame ranges whose propagated labels contain `cls` (event seek-back).
  std::vector<std::pair<std::size_t, std::size_t>> FindObject(
      synth::ObjectClass cls, std::size_t total_frames) const;

 private:
  std::map<std::size_t, synth::LabelSet> rows_;
};

struct SystemConfig {
  NnTier nn_tier = NnTier::kCloud;
  net::LinkModel camera_to_edge = net::LinkModel::Lan();
  net::LinkModel edge_to_cloud = net::LinkModel::Wan();
  /// Wall-clock scale for link waits (0 = account bytes but never sleep;
  /// 1 = real time). Tests compress time; demos use small nonzero values.
  double link_time_scale = 0.0;
  int nn_input_size = 96;   ///< classifier input (even)
  int still_qp = 26;
  std::size_t queue_capacity = 8;  ///< the event queue bound (backpressure)
};

struct SystemReport {
  std::size_t frames_streamed = 0;    ///< frames leaving the camera
  std::size_t iframes_selected = 0;   ///< frames passing the seeker
  std::size_t labels_written = 0;     ///< rows in the results database
  double wall_seconds = 0.0;
  double fps = 0.0;                   ///< frames_streamed / wall_seconds
  std::uint64_t camera_to_edge_bytes = 0;
  std::uint64_t edge_to_cloud_bytes = 0;
  std::vector<dataflow::StageStats> stages;
};

/// The assembled system. The classifier must be fitted before Run().
class SieveSystem {
 public:
  SieveSystem(SystemConfig config, const nn::FrameClassifier* classifier)
      : config_(config), classifier_(classifier) {}

  /// Stream a pre-encoded semantic video through camera -> edge -> cloud.
  /// Results land in `db`.
  Expected<SystemReport> Run(const codec::EncodedVideo& video,
                             ResultsDatabase& db);

 private:
  SystemConfig config_;
  const nn::FrameClassifier* classifier_;
};

}  // namespace sieve::core
