#include "core/placements.h"

#include <algorithm>
#include <cmath>

#include "codec/encoder.h"
#include "codec/still.h"
#include "core/detectors.h"
#include "media/image_ops.h"
#include "synth/scene.h"
#include "vision/similarity.h"

namespace sieve::core {

const char* PlacementName(Placement p) noexcept {
  switch (p) {
    case Placement::kIFrameEdgeCloudNN: return "I-frame edge + cloud NN";
    case Placement::kIFrameCloudCloudNN: return "I-frame cloud + cloud NN";
    case Placement::kIFrameEdgeEdgeNN: return "I-frame edge + edge NN";
    case Placement::kUniformEdgeCloudNN: return "Uniform sampling edge + cloud NN";
    case Placement::kMseEdgeCloudNN: return "MSE edge + cloud NN";
  }
  return "unknown";
}

bool UsesSemanticEncoding(Placement p) noexcept {
  return p == Placement::kIFrameEdgeCloudNN ||
         p == Placement::kIFrameCloudCloudNN ||
         p == Placement::kIFrameEdgeEdgeNN;
}

namespace {

/// MSE threshold per Section V-B ("the threshold ... that achieves an
/// F1-score of 95% in the training set"): the *loosest sampling* (highest
/// threshold, fewest selections) whose training F1 still meets the target;
/// falls back to the max-F1 threshold when the target is unreachable.
double CalibrateMseThresholdForF1(const std::vector<double>& signal,
                                  const synth::GroundTruth& truth,
                                  double target_f1) {
  // Candidate thresholds: the distinct signal values (selection changes only
  // at these points). Evaluate a capped, evenly spaced subset.
  std::vector<double> sorted(signal.begin() + 1, signal.end());
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  constexpr std::size_t kMaxCandidates = 160;
  const std::size_t step = std::max<std::size_t>(1, sorted.size() / kMaxCandidates);

  double best_ok_threshold = -1.0;
  double best_f1_threshold = -1.0, best_f1 = -1.0;
  for (std::size_t i = 0; i < sorted.size(); i += step) {
    const double threshold = sorted[i];
    const auto selected = vision::SelectByThreshold(signal, threshold);
    const DetectionQuality q = EvaluateSelection(truth, selected);
    if (q.f1 >= target_f1 && threshold > best_ok_threshold) {
      best_ok_threshold = threshold;
    }
    if (q.f1 > best_f1) {
      best_f1 = q.f1;
      best_f1_threshold = threshold;
    }
  }
  return best_ok_threshold >= 0 ? best_ok_threshold : best_f1_threshold;
}

std::size_t AutoProbeFrames(const synth::SceneConfig& config) {
  // Cover ~6 full event cycles so I-frame and selection rates are stable.
  const double cycle_s = config.mean_gap_seconds + config.mean_dwell_seconds +
                         2.0 * config.ramp_seconds;
  const double frames = 6.0 * cycle_s * config.fps;
  return std::size_t(std::clamp(frames, 900.0, 3600.0));
}

std::size_t Extrapolate(std::size_t probe_value, double scale) {
  return std::size_t(std::llround(double(probe_value) * scale));
}

}  // namespace

Expected<VideoWorkload> BuildWorkload(synth::DatasetId id,
                                      const WorkloadOptions& options) {
  const synth::DatasetSpec& spec = synth::GetDatasetSpec(id);
  VideoWorkload w;
  w.name = spec.name;
  w.width = spec.width;
  w.height = spec.height;
  w.fps = spec.fps;

  synth::SceneConfig config = synth::MakeDatasetConfig(id, 0, options.seed);
  const std::size_t probe_frames =
      options.probe_frames ? options.probe_frames : AutoProbeFrames(config);
  config.num_frames = probe_frames;
  // Downscale probe geometry (object scale is relative; event structure and
  // selection rates are unchanged; bytes extrapolate by pixel ratio).
  double pixel_scale = 1.0;
  if (options.max_probe_width > 0 && config.width > options.max_probe_width) {
    const double shrink = double(options.max_probe_width) / config.width;
    const int pw = (int(config.width * shrink) / 2) * 2;
    const int ph = (int(config.height * shrink) / 2) * 2;
    pixel_scale = double(spec.width) * spec.height / (double(pw) * ph);
    config.width = pw;
    config.height = ph;
  }

  w.total_frames = options.target_frames
                       ? options.target_frames
                       : std::size_t(4.0 * 3600.0 * spec.fps);  // 4h eval slice
  const double scale = double(w.total_frames) / double(probe_frames);
  const double byte_scale = scale * pixel_scale;

  const synth::SyntheticVideo video = synth::GenerateScene(config);
  const std::vector<codec::FrameCost> costs = codec::AnalyzeVideo(video.video);

  // --- Tuned semantic parameters -----------------------------------------
  if (spec.has_labels) {
    const TuningResult tuned = TuneFromCosts(costs, video.truth, options.grid);
    w.tuned.gop_size = tuned.best.gop_size;
    w.tuned.scenecut = tuned.best.scenecut;
  } else {
    // Fixed 1 I-frame per 5 seconds (Section V-B's unlabeled-feed setting).
    w.tuned.gop_size =
        std::max(1, int(spec.fps * options.unlabeled_iframe_period_s));
    w.tuned.scenecut = 0;
  }

  // --- Real encodes: semantic and default ---------------------------------
  codec::EncoderParams semantic_params;
  semantic_params.keyframe = w.tuned;
  auto semantic = codec::VideoEncoder(semantic_params).Encode(video.video);
  if (!semantic.ok()) return semantic.status();
  auto fallback = codec::VideoEncoder(codec::EncoderParams::DefaultEncoding())
                      .Encode(video.video);
  if (!fallback.ok()) return fallback.status();

  std::size_t probe_semantic_iframes = 0, probe_iframe_payload = 0;
  for (const auto& record : semantic->records) {
    if (record.type == codec::FrameType::kIntra) {
      ++probe_semantic_iframes;
      probe_iframe_payload += record.payload_size;
    }
  }
  w.semantic_iframes = Extrapolate(probe_semantic_iframes, scale);
  w.semantic_iframe_payload = Extrapolate(probe_iframe_payload, byte_scale);
  w.semantic_bytes = Extrapolate(semantic->bytes.size(), byte_scale);
  w.default_bytes = Extrapolate(fallback->bytes.size(), byte_scale);
  w.default_iframes = Extrapolate(fallback->IntraFrameCount(), scale);
  w.uniform_selected = w.semantic_iframes;  // equal transfer budget (paper)

  // --- MSE selection on the raw frames ------------------------------------
  const std::vector<double> mse_signal =
      vision::MseChangeSignal(video.video.frames);
  std::size_t probe_mse_selected;
  if (spec.has_labels) {
    const double threshold = CalibrateMseThresholdForF1(mse_signal, video.truth,
                                                        options.mse_target_f1);
    probe_mse_selected = vision::SelectByThreshold(mse_signal, threshold).size();
  } else {
    probe_mse_selected = std::max<std::size_t>(
        1, std::size_t(double(probe_frames) /
                       (spec.fps * options.unlabeled_iframe_period_s)));
  }
  w.mse_selected = Extrapolate(probe_mse_selected, scale);

  // --- Transfer unit: resized still ---------------------------------------
  // Pick an occupied frame (middle of the busiest event) so the still has
  // representative content.
  std::size_t sample_frame = probe_frames / 2;
  for (const auto& event : video.truth.Events()) {
    if (!event.labels.empty()) {
      sample_frame = (event.start + event.end) / 2;
      break;
    }
  }
  const media::Frame still_input =
      media::ResizeFrame(video.video.frames[sample_frame], 300, 300);
  w.still_bytes = codec::EncodeStill(still_input).size();

  return w;
}

TransferReport ComputeTransfer(Placement placement,
                               std::span<const VideoWorkload> workloads) {
  TransferReport report;
  report.placement = placement;
  for (const auto& w : workloads) {
    // Camera -> edge always carries the whole encoded stream.
    report.camera_to_edge_bytes +=
        UsesSemanticEncoding(placement) ? w.semantic_bytes : w.default_bytes;
    switch (placement) {
      case Placement::kIFrameEdgeCloudNN:
        report.edge_to_cloud_bytes +=
            std::uint64_t(w.semantic_iframes) * w.still_bytes;
        break;
      case Placement::kIFrameCloudCloudNN:
        report.edge_to_cloud_bytes += w.semantic_bytes;
        break;
      case Placement::kIFrameEdgeEdgeNN:
        break;  // nothing leaves the edge
      case Placement::kUniformEdgeCloudNN:
        report.edge_to_cloud_bytes +=
            std::uint64_t(w.uniform_selected) * w.still_bytes;
        break;
      case Placement::kMseEdgeCloudNN:
        report.edge_to_cloud_bytes +=
            std::uint64_t(w.mse_selected) * w.still_bytes;
        break;
    }
  }
  return report;
}

ThroughputReport SimulateThroughput(Placement placement,
                                    std::span<const VideoWorkload> workloads,
                                    const CostModel& costs, net::LinkModel wan,
                                    MachineModel machines) {
  ThroughputReport report;
  report.placement = placement;

  sim::Simulator simulator;
  sim::QueueNetwork network(&simulator);

  // Station service times are resolved per job via the `kind` tag (the
  // workload index); per-job constants are captured in these tables.
  struct PerVideo {
    double edge_prep = 0;    ///< edge work per selected frame (amortized)
    double cloud_prep = 0;   ///< cloud-side seek/decode per selected frame
    double wan_seconds = 0;  ///< per selected frame
    double nn_seconds = 0;   ///< at the placement's NN tier
    std::size_t selected = 0;
  };
  std::vector<PerVideo> table(workloads.size());

  const double resize_still_300 =
      (costs.resize_per_pixel + costs.encode_still_per_pixel) * 300.0 * 300.0;

  // Streaming transfers are pipelined (NiFi flowfiles over a persistent
  // connection), so jobs pay serialization delay only — per-message RTT
  // does not accumulate.
  const auto wan_seconds = [&wan](std::size_t bytes) {
    return double(bytes) * 8.0 / (wan.bandwidth_mbps * 1e6);
  };

  for (std::size_t v = 0; v < workloads.size(); ++v) {
    const VideoWorkload& w = workloads[v];
    PerVideo& pv = table[v];
    const double px = double(w.width) * double(w.height);
    const std::size_t selected =
        placement == Placement::kMseEdgeCloudNN
            ? w.mse_selected
            : (placement == Placement::kUniformEdgeCloudNN ? w.uniform_selected
                                                           : w.semantic_iframes);
    pv.selected = std::max<std::size_t>(1, selected);
    const double stride = double(w.total_frames) / double(pv.selected);

    switch (placement) {
      case Placement::kIFrameEdgeCloudNN:
        pv.edge_prep = stride * costs.seek_per_frame +
                       costs.decode_i_per_pixel * px + resize_still_300;
        pv.wan_seconds = wan_seconds(w.still_bytes);
        pv.nn_seconds = costs.ref_nn_cloud_seconds;
        break;
      case Placement::kIFrameCloudCloudNN:
        // The whole stream crosses the WAN, accounted per selected frame.
        pv.wan_seconds = wan_seconds(
            std::size_t(double(w.semantic_bytes) / double(pv.selected)));
        pv.cloud_prep = (stride * costs.seek_per_frame +
                         costs.decode_i_per_pixel * px) /
                        costs.cloud_speedup;
        pv.nn_seconds = costs.ref_nn_cloud_seconds;
        break;
      case Placement::kIFrameEdgeEdgeNN:
        pv.edge_prep = stride * costs.seek_per_frame +
                       costs.decode_i_per_pixel * px;
        pv.nn_seconds = costs.ref_nn_edge_seconds;
        break;
      case Placement::kUniformEdgeCloudNN:
        // Uniform sampling still decodes every frame (the paper's point).
        pv.edge_prep = stride * costs.decode_p_per_pixel * px + resize_still_300;
        pv.wan_seconds = wan_seconds(w.still_bytes);
        pv.nn_seconds = costs.ref_nn_cloud_seconds;
        break;
      case Placement::kMseEdgeCloudNN:
        pv.edge_prep = stride * (costs.decode_p_per_pixel + costs.mse_per_pixel) * px +
                       resize_still_300;
        pv.wan_seconds = wan_seconds(w.still_bytes);
        pv.nn_seconds = costs.ref_nn_cloud_seconds;
        break;
    }
  }

  const int edge_station = network.AddStation(
      "edge", machines.edge_servers,
      [&table](sim::Job& job) { return table[job.kind].edge_prep; });
  const int wan_station = network.AddStation(
      "wan", 1, [&table](sim::Job& job) { return table[job.kind].wan_seconds; });
  const int cloud_prep_station = network.AddStation(
      "cloud-prep", machines.cloud_servers,
      [&table](sim::Job& job) { return table[job.kind].cloud_prep; });
  const int nn_station = network.AddStation(
      "nn",
      placement == Placement::kIFrameEdgeEdgeNN ? machines.edge_servers
                                                : machines.cloud_servers,
      [&table](sim::Job& job) { return table[job.kind].nn_seconds; });

  std::vector<int> route;
  switch (placement) {
    case Placement::kIFrameEdgeCloudNN:
    case Placement::kUniformEdgeCloudNN:
    case Placement::kMseEdgeCloudNN:
      route = {edge_station, wan_station, nn_station};
      break;
    case Placement::kIFrameCloudCloudNN:
      route = {wan_station, cloud_prep_station, nn_station};
      break;
    case Placement::kIFrameEdgeEdgeNN:
      route = {edge_station, nn_station};
      break;
  }

  // Post-event analysis: all selected frames are available at t=0 (videos
  // pre-recorded at the edge), staggered infinitesimally to keep FIFO order
  // interleaved across videos.
  std::uint64_t job_id = 0;
  for (std::size_t v = 0; v < workloads.size(); ++v) {
    report.total_frames += workloads[v].total_frames;
    for (std::size_t i = 0; i < table[v].selected; ++i) {
      sim::Job job;
      job.id = job_id++;
      job.kind = std::uint32_t(v);
      job.bytes = workloads[v].still_bytes;
      network.Inject(std::move(job), route, 1e-9 * double(job_id));
    }
  }
  report.jobs = job_id;

  network.Run();
  report.makespan_seconds = network.makespan();
  report.fps = report.makespan_seconds > 0
                   ? double(report.total_frames) / report.makespan_seconds
                   : 0.0;
  for (std::size_t s = 0; s < network.station_count(); ++s) {
    report.stations.push_back(network.stats(int(s)));
  }
  (void)wan_station;
  (void)cloud_prep_station;
  return report;
}

}  // namespace sieve::core
