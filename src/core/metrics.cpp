#include "core/metrics.h"

namespace sieve::core {

double HarmonicMean(double a, double b) noexcept {
  if (a <= 0.0 || b <= 0.0) return 0.0;
  return 2.0 * a * b / (a + b);
}

DetectionQuality EvaluateSelection(const synth::GroundTruth& truth,
                                   const std::vector<std::size_t>& selected) {
  DetectionQuality q;
  const std::size_t n = truth.frame_count();
  if (n == 0) return q;
  q.accuracy = synth::PropagatedLabelAccuracy(truth, selected);
  q.sample_rate = double(selected.size()) / double(n);
  q.filtering_rate = 1.0 - q.sample_rate;
  q.f1 = HarmonicMean(q.accuracy, q.filtering_rate);
  return q;
}

DetectionQuality EvaluateKeyframes(const synth::GroundTruth& truth,
                                   const std::vector<bool>& is_selected) {
  std::vector<std::size_t> selected;
  for (std::size_t i = 0; i < is_selected.size(); ++i) {
    if (is_selected[i]) selected.push_back(i);
  }
  return EvaluateSelection(truth, selected);
}

}  // namespace sieve::core
