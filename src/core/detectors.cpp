#include "core/detectors.h"

namespace sieve::core {

const char* DetectorName(DetectorKind kind) noexcept {
  switch (kind) {
    case DetectorKind::kSieve: return "SiEVE";
    case DetectorKind::kMse: return "MSE";
    case DetectorKind::kSift: return "SIFT";
    case DetectorKind::kUniform: return "Uniform";
  }
  return "unknown";
}

Selection SelectSieve(const std::vector<codec::FrameCost>& costs,
                      const codec::KeyframeParams& params) {
  Selection selection;
  selection.kind = DetectorKind::kSieve;
  const std::vector<bool> keyframes = codec::PlaceKeyframes(costs, params);
  for (std::size_t i = 0; i < keyframes.size(); ++i) {
    if (keyframes[i]) selection.frames.push_back(i);
  }
  return selection;
}

Selection SelectBySignal(DetectorKind kind, const std::vector<double>& signal,
                         std::size_t target_count) {
  Selection selection;
  selection.kind = kind;
  selection.threshold = vision::CalibrateThreshold(signal, target_count);
  selection.frames = vision::SelectByThreshold(signal, selection.threshold);
  return selection;
}

Selection SelectBySignalThreshold(DetectorKind kind,
                                  const std::vector<double>& signal,
                                  double threshold) {
  Selection selection;
  selection.kind = kind;
  selection.threshold = threshold;
  selection.frames = vision::SelectByThreshold(signal, threshold);
  return selection;
}

Selection SelectUniform(std::size_t total_frames, std::size_t target_count) {
  Selection selection;
  selection.kind = DetectorKind::kUniform;
  if (total_frames == 0 || target_count == 0) return selection;
  const double stride =
      double(total_frames) / double(std::min(total_frames, target_count));
  for (double pos = 0.0; pos < double(total_frames); pos += stride) {
    selection.frames.push_back(std::size_t(pos));
  }
  return selection;
}

OnlineSignalDetector::OnlineSignalDetector(DetectorKind kind, double threshold,
                                           vision::SiftParams sift_params)
    : kind_(kind), threshold_(threshold), sift_(sift_params) {}

bool OnlineSignalDetector::Push(const media::Frame& frame) {
  double signal = 0.0;
  switch (kind_) {
    case DetectorKind::kMse:
      signal = mse_.Push(frame);
      break;
    case DetectorKind::kSift:
      signal = sift_.Push(frame);
      break;
    default:
      signal = 0.0;
      break;
  }
  const bool selected = first_ || signal > threshold_;
  first_ = false;
  return selected;
}

}  // namespace sieve::core
