// Event-detection strategies unified behind one interface.
//
// Every strategy reduces a video to a set of "selected" frames that undergo
// NN inference; all other frames inherit the most recent selected frame's
// labels. SiEVE selects by seeking I-frames of a semantically encoded
// stream (no decoding); the baselines decode every frame and threshold an
// image-similarity signal (MSE, SIFT) or sample uniformly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "codec/analysis.h"
#include "codec/encoder.h"
#include "media/frame.h"
#include "vision/similarity.h"

namespace sieve::core {

enum class DetectorKind {
  kSieve = 0,     ///< semantic encoding + I-frame seeking
  kMse = 1,       ///< decode all + mean-squared-error threshold
  kSift = 2,      ///< decode all + SIFT match-ratio threshold
  kUniform = 3,   ///< decode all + fixed-interval sampling
};

const char* DetectorName(DetectorKind kind) noexcept;

/// A selection of frames plus how it was obtained.
struct Selection {
  DetectorKind kind = DetectorKind::kSieve;
  std::vector<std::size_t> frames;  ///< sorted selected indices
  double threshold = 0.0;           ///< threshold used (signal detectors)

  double SampleRate(std::size_t total) const noexcept {
    return total ? double(frames.size()) / double(total) : 0.0;
  }
};

/// SiEVE's selection for given keyframe parameters, replayed from analysis
/// costs (identical to what a real encode + seek produces).
Selection SelectSieve(const std::vector<codec::FrameCost>& costs,
                      const codec::KeyframeParams& params);

/// Threshold a change signal so that ~target_count frames are selected.
Selection SelectBySignal(DetectorKind kind, const std::vector<double>& signal,
                         std::size_t target_count);

/// Threshold a change signal with a fixed, pre-calibrated threshold.
Selection SelectBySignalThreshold(DetectorKind kind,
                                  const std::vector<double>& signal,
                                  double threshold);

/// Uniform sampling: ~target_count frames at a fixed stride (first frame of
/// each interval, matching the paper's uniform-sampling baseline).
Selection SelectUniform(std::size_t total_frames, std::size_t target_count);

/// Streaming online detector for the live pipeline: feed frames, get a
/// boolean "event" decision per frame (frame 0 is always an event).
class OnlineSignalDetector {
 public:
  OnlineSignalDetector(DetectorKind kind, double threshold,
                       vision::SiftParams sift_params = {});

  /// True when this frame should be selected for inference.
  bool Push(const media::Frame& frame);

  DetectorKind kind() const noexcept { return kind_; }
  double threshold() const noexcept { return threshold_; }

 private:
  DetectorKind kind_;
  double threshold_;
  bool first_ = true;
  vision::MseSignal mse_;
  vision::SiftSignal sift_;
};

}  // namespace sieve::core
