// Service-time calibration: measure the real implementations once, use the
// measured costs everywhere (Neurosurgeon-style profiling, and the DES's
// station service times for the paper-scale Figure 4/5 runs).
//
// All pixel-path costs are measured per pixel at a probe resolution and
// scale linearly with frame area — the underlying loops are O(pixels).
// Machine roles follow the paper's testbed: the edge desktop runs the
// measured costs as-is; the camera SoC is modelled slower and the cloud
// server faster by configurable factors.
#pragma once

#include <cstddef>
#include <string>

#include "common/status.h"

namespace sieve::core {

/// Measured per-operation costs (seconds), on the calibration machine.
struct CostModel {
  // Container / codec paths.
  double seek_per_frame = 0.0;        ///< header hop per frame (any size)
  double decode_i_per_pixel = 0.0;    ///< random-access I-frame decode
  double decode_p_per_pixel = 0.0;    ///< sequential P-frame decode
  double encode_still_per_pixel = 0.0;///< still (JPEG-like) encode
  double resize_per_pixel = 0.0;      ///< bilinear resize (per source pixel)

  // Image-similarity baselines (per pixel of the compared frames).
  double mse_per_pixel = 0.0;
  double sift_per_pixel = 0.0;

  // Reference NN (per frame at the classifier's input size).
  double nn_infer_per_frame = 0.0;

  // Machine-speed model (relative to the calibration machine == edge).
  double cloud_speedup = 2.5;   ///< cloud runs compute this much faster
  double camera_slowdown = 4.0; ///< camera SoC is this much slower

  // Deployment-scale reference-NN costs for the end-to-end model (Fig. 4).
  // The paper's reference NN is YOLOv3 at 300x300: ~1 s/frame on the edge
  // desktop CPU and fast at the cloud ("fast NN inference at the cloud",
  // Section V-B — server-side acceleration/batching). Our measured small-CNN
  // cost stands in for live runs; these constants stand in for YOLOv3 when
  // reproducing the paper-scale throughput shape. Documented in DESIGN.md.
  double ref_nn_edge_seconds = 0.4;
  double ref_nn_cloud_seconds = 0.04;

  /// This library's educational codec decodes ~10x slower than a production
  /// decoder; the paper measures 8 ms for a full-frame decode at 1080p
  /// (Section V-A). For deployment-scale modelling, rescale the decode and
  /// still-encode costs so the 1080p full decode matches that figure while
  /// keeping this machine's relative op costs. Never scales costs up.
  CostModel NormalizedToProductionCodec() const;

  /// Sum helpers at a given resolution.
  double DecodeIFrameSeconds(int w, int h) const noexcept {
    return decode_i_per_pixel * double(w) * double(h);
  }
  double DecodePFrameSeconds(int w, int h) const noexcept {
    return decode_p_per_pixel * double(w) * double(h);
  }
  double MseSeconds(int w, int h) const noexcept {
    return mse_per_pixel * double(w) * double(h);
  }
  double SiftSeconds(int w, int h) const noexcept {
    return sift_per_pixel * double(w) * double(h);
  }

  std::string ToString() const;
};

struct CalibrationOptions {
  int probe_width = 320;
  int probe_height = 240;
  std::size_t probe_frames = 48;
  int repetitions = 2;
  std::uint64_t seed = 99;
};

/// Measure every CostModel entry by running the real implementations on a
/// small synthetic probe video. Takes a few seconds.
Expected<CostModel> MeasureCostModel(const CalibrationOptions& options = {});

/// A fixed cost model with representative magnitudes (for unit tests and
/// deterministic examples that should not depend on machine speed).
CostModel ReferenceCostModel();

}  // namespace sieve::core
