// The five end-to-end placements of Section V-B, with exact byte accounting
// (Figure 5) and a calibrated discrete-event throughput model (Figure 4).
//
// Workloads are built by really rendering + encoding a probe slice of each
// dataset with this library's codec, measuring every byte and selection
// count, then extrapolating linearly to the paper's frame counts (the probe
// is i.i.d. in time, so counts and bytes scale with duration).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/calibration.h"
#include "core/tuner.h"
#include "net/link.h"
#include "sim/queue_network.h"
#include "synth/datasets.h"

namespace sieve::core {

/// The five baselines of Figure 4/5, in the paper's order.
enum class Placement {
  kIFrameEdgeCloudNN = 0,  ///< 3-tier: seek+decode at edge, NN at cloud
  kIFrameCloudCloudNN = 1, ///< 2-tier: full video to cloud, all work there
  kIFrameEdgeEdgeNN = 2,   ///< 2-tier: everything at the edge
  kUniformEdgeCloudNN = 3, ///< decode all + uniform sampling at edge, NN cloud
  kMseEdgeCloudNN = 4,     ///< decode all + MSE threshold at edge, NN cloud
};

inline constexpr int kNumPlacements = 5;
const char* PlacementName(Placement p) noexcept;

/// Whether the placement consumes the semantically encoded stream (the
/// first three) or the default-encoded stream (uniform, MSE).
bool UsesSemanticEncoding(Placement p) noexcept;

/// Everything the end-to-end model needs to know about one camera feed,
/// measured on a probe slice and extrapolated to `total_frames`.
struct VideoWorkload {
  std::string name;
  int width = 0, height = 0;
  double fps = 30.0;
  std::size_t total_frames = 0;

  // Semantic encoding (tuned parameters).
  codec::KeyframeParams tuned;
  std::size_t semantic_iframes = 0;
  std::size_t semantic_bytes = 0;          ///< whole semantic container
  std::size_t semantic_iframe_payload = 0; ///< summed I-frame payload bytes

  // Default encoding (GOP 250 / scenecut 40).
  std::size_t default_bytes = 0;
  std::size_t default_iframes = 0;

  // Baseline selections on the default-encoded stream.
  std::size_t uniform_selected = 0;  ///< == semantic_iframes (fair budget)
  std::size_t mse_selected = 0;      ///< MSE threshold calibrated on training

  // Transfer unit: a selected frame resized to 300x300 and still-encoded.
  std::size_t still_bytes = 0;

  double semantic_iframe_rate() const noexcept {
    return total_frames ? double(semantic_iframes) / double(total_frames) : 0;
  }
};

struct WorkloadOptions {
  std::size_t probe_frames = 0;  ///< 0 = auto (covers several event cycles)
  std::size_t target_frames = 0; ///< 0 = the paper's 4h at dataset fps
  /// Probes at full 1080p are needlessly slow; geometry is downscaled so the
  /// probe width is at most this (object scale is relative, so event
  /// behaviour is unchanged) and byte counts are extrapolated by the pixel
  /// ratio (bits/pixel is stable across scales for this codec). 0 disables
  /// downscaling.
  int max_probe_width = 480;
  std::uint64_t seed = 1;
  /// Unlabeled feeds (Taipei, Amsterdam) use a fixed 1-frame-per-5s I rate,
  /// exactly as Section V-B prescribes.
  double unlabeled_iframe_period_s = 5.0;
  /// Labeled feeds calibrate the MSE threshold to reach this F1 on training
  /// data (Section V-B: "F1-score of 95% in the training set").
  double mse_target_f1 = 0.95;
  TunerGrid grid = TunerGrid::Extended();
};

/// Build a workload by rendering, tuning, and encoding a probe slice of the
/// dataset, then extrapolating to target_frames.
Expected<VideoWorkload> BuildWorkload(synth::DatasetId id,
                                      const WorkloadOptions& options = {});

/// Data-transfer accounting (Figure 5): bytes crossing each hop.
struct TransferReport {
  Placement placement;
  std::uint64_t camera_to_edge_bytes = 0;
  std::uint64_t edge_to_cloud_bytes = 0;
};
TransferReport ComputeTransfer(Placement placement,
                               std::span<const VideoWorkload> workloads);

/// Machine model for the throughput simulation.
struct MachineModel {
  int edge_servers = 2;   ///< the paper's i7-5600 (2C/4T laptop part)
  int cloud_servers = 4;  ///< the paper's Xeon E5-1603 (4C)
};

/// Throughput simulation result (Figure 4): processed frames per second,
/// where "processed" counts every frame of every stream (labels propagate).
struct ThroughputReport {
  Placement placement;
  double fps = 0.0;
  double makespan_seconds = 0.0;
  std::uint64_t jobs = 0;          ///< selected frames pushed through
  std::uint64_t total_frames = 0;
  std::vector<sim::StationStats> stations;
};

ThroughputReport SimulateThroughput(Placement placement,
                                    std::span<const VideoWorkload> workloads,
                                    const CostModel& costs,
                                    net::LinkModel wan = net::LinkModel::Wan(),
                                    MachineModel machines = {});

}  // namespace sieve::core
