#include "core/tuner.h"

#include <sstream>

namespace sieve::core {

TuningResult TuneFromCosts(const std::vector<codec::FrameCost>& costs,
                           const synth::GroundTruth& truth,
                           const TunerGrid& grid) {
  TuningResult result;
  result.best.quality.f1 = -1.0;
  for (const int gop : grid.gop_sizes) {
    for (const int sc : grid.scenecuts) {
      codec::KeyframeParams params;
      params.gop_size = gop;
      params.scenecut = sc;
      const std::vector<bool> keyframes = codec::PlaceKeyframes(costs, params);
      TuningCandidate candidate;
      candidate.gop_size = gop;
      candidate.scenecut = sc;
      candidate.quality = EvaluateKeyframes(truth, keyframes);
      if (candidate.quality.f1 > result.best.quality.f1) {
        result.best = candidate;
      }
      result.all.push_back(candidate);
    }
  }
  return result;
}

TuningResult TuneEncoder(const media::RawVideo& training_video,
                         const synth::GroundTruth& truth, const TunerGrid& grid,
                         const codec::AnalysisParams& analysis) {
  const std::vector<codec::FrameCost> costs =
      codec::AnalyzeVideo(training_video, analysis);
  return TuneFromCosts(costs, truth, grid);
}

void CameraParameterTable::Set(const std::string& camera_id,
                               codec::KeyframeParams params) {
  table_[camera_id] = params;
}

Expected<codec::KeyframeParams> CameraParameterTable::Get(
    const std::string& camera_id) const {
  auto it = table_.find(camera_id);
  if (it == table_.end()) {
    return Status::NotFound("no tuned parameters for camera: " + camera_id);
  }
  return it->second;
}

bool CameraParameterTable::Contains(const std::string& camera_id) const {
  return table_.contains(camera_id);
}

std::string CameraParameterTable::Serialize() const {
  std::ostringstream os;
  os << "# camera_id gop_size scenecut min_keyint\n";
  for (const auto& [id, params] : table_) {
    os << id << " " << params.gop_size << " " << params.scenecut << " "
       << params.min_keyint << "\n";
  }
  return os.str();
}

Expected<CameraParameterTable> CameraParameterTable::Deserialize(
    const std::string& text) {
  CameraParameterTable table;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string id;
    codec::KeyframeParams params;
    if (!(fields >> id >> params.gop_size >> params.scenecut >>
          params.min_keyint)) {
      return Status::Corrupt("CameraParameterTable: bad line: " + line);
    }
    table.Set(id, params);
  }
  return table;
}

}  // namespace sieve::core
