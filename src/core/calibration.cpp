#include "core/calibration.h"

#include <sstream>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/still.h"
#include "common/stopwatch.h"
#include "core/seeker.h"
#include "media/image_ops.h"
#include "media/metrics.h"
#include "nn/classifier.h"
#include "synth/scene.h"
#include "vision/sift.h"

namespace sieve::core {

std::string CostModel::ToString() const {
  std::ostringstream os;
  os << "seek/frame=" << seek_per_frame * 1e9 << "ns"
     << " decodeI/px=" << decode_i_per_pixel * 1e9 << "ns"
     << " decodeP/px=" << decode_p_per_pixel * 1e9 << "ns"
     << " still/px=" << encode_still_per_pixel * 1e9 << "ns"
     << " resize/px=" << resize_per_pixel * 1e9 << "ns"
     << " mse/px=" << mse_per_pixel * 1e9 << "ns"
     << " sift/px=" << sift_per_pixel * 1e9 << "ns"
     << " nn/frame=" << nn_infer_per_frame * 1e3 << "ms";
  return os.str();
}

CostModel CostModel::NormalizedToProductionCodec() const {
  CostModel out = *this;
  constexpr double kPaperDecodeSeconds = 8e-3;       // 8 ms/frame ...
  constexpr double kPaperDecodePixels = 1920.0 * 1080.0;  // ... at 1080p
  const double measured = decode_p_per_pixel * kPaperDecodePixels;
  if (measured > kPaperDecodeSeconds && decode_p_per_pixel > 0) {
    const double factor = kPaperDecodeSeconds / measured;
    out.decode_p_per_pixel *= factor;
    out.decode_i_per_pixel *= factor;
    out.encode_still_per_pixel *= factor;
  }
  return out;
}

Expected<CostModel> MeasureCostModel(const CalibrationOptions& options) {
  CostModel model;

  // Probe video: moderate motion so P-frames carry real residual work.
  synth::SceneConfig config;
  config.width = options.probe_width;
  config.height = options.probe_height;
  config.num_frames = options.probe_frames;
  config.seed = options.seed;
  config.mean_gap_seconds = 1.0;
  config.min_gap_seconds = 0.3;
  config.mean_dwell_seconds = 1.0;
  config.min_dwell_seconds = 0.5;
  const synth::SyntheticVideo probe = synth::GenerateScene(config);
  const double pixels = double(config.width) * double(config.height);

  codec::EncoderParams params;
  params.keyframe.gop_size = 8;  // several I-frames to measure random access
  params.keyframe.scenecut = 0;
  auto encoded = codec::VideoEncoder(params).Encode(probe.video);
  if (!encoded.ok()) return encoded.status();

  Stopwatch watch;

  // Seek: walk the header chain many times (it is far faster than the clock
  // granularity for one pass).
  {
    const int laps = 200 * options.repetitions;
    watch.Start();
    std::size_t sink = 0;
    for (int i = 0; i < laps; ++i) {
      auto report = SeekIFrames(encoded->bytes);
      if (!report.ok()) return report.status();
      sink += report->iframes.size();
    }
    if (sink == 0) return Status::Internal("calibration: no I-frames seeked");
    model.seek_per_frame =
        watch.ElapsedSeconds() / double(laps) / double(encoded->records.size());
  }

  // Random-access I-frame decode.
  {
    auto report = SeekIFrames(encoded->bytes);
    if (!report.ok()) return report.status();
    int decoded = 0;
    watch.Start();
    for (int rep = 0; rep < options.repetitions; ++rep) {
      for (const auto& record : report->iframes) {
        auto frame = codec::DecodeIntraFrameAt(encoded->bytes, record);
        if (!frame.ok()) return frame.status();
        ++decoded;
      }
    }
    model.decode_i_per_pixel = watch.ElapsedSeconds() / decoded / pixels;
  }

  // Sequential full decode; isolate P cost by subtracting the measured I cost.
  {
    watch.Start();
    std::size_t p_frames = 0, i_frames = 0;
    for (int rep = 0; rep < options.repetitions; ++rep) {
      auto decoder = codec::VideoDecoder::Open(encoded->bytes);
      if (!decoder.ok()) return decoder.status();
      while (!decoder->AtEnd()) {
        const bool is_p = decoder->records()[decoder->position()].type ==
                          codec::FrameType::kInter;
        auto frame = decoder->DecodeNext();
        if (!frame.ok()) return frame.status();
        (is_p ? p_frames : i_frames) += 1;
      }
    }
    const double total = watch.ElapsedSeconds();
    const double i_cost = model.decode_i_per_pixel * pixels * double(i_frames);
    model.decode_p_per_pixel =
        std::max(0.0, (total - i_cost)) / double(p_frames ? p_frames : 1) / pixels;
    // Scheduling noise between the two measurements can drive the derived
    // P cost to ~0; floor it at a structural fraction of the I cost
    // (motion compensation + entropy decoding are never free).
    model.decode_p_per_pixel =
        std::max(model.decode_p_per_pixel, 0.1 * model.decode_i_per_pixel);
  }

  // Still encode (at the NN shipping resolution path: resize + encode).
  {
    const media::Frame& sample = probe.video.frames.front();
    const int reps = 4 * options.repetitions;
    watch.Start();
    std::size_t bytes = 0;
    for (int i = 0; i < reps; ++i) bytes += codec::EncodeStill(sample).size();
    if (bytes == 0) return Status::Internal("calibration: empty still");
    model.encode_still_per_pixel = watch.ElapsedSeconds() / reps / pixels;

    watch.Start();
    for (int i = 0; i < reps; ++i) {
      media::Frame resized = media::ResizeFrame(sample, 300, 300);
      if (resized.empty()) return Status::Internal("calibration: resize failed");
    }
    model.resize_per_pixel = watch.ElapsedSeconds() / reps / pixels;
  }

  // MSE and SIFT per frame pair.
  {
    const int reps = 8 * options.repetitions;
    watch.Start();
    double sink = 0;
    for (int i = 0; i < reps; ++i) {
      sink += media::FrameMse(probe.video.frames[0], probe.video.frames[1]);
    }
    model.mse_per_pixel = watch.ElapsedSeconds() / reps / pixels + sink * 0.0;

    watch.Start();
    std::vector<vision::SiftKeypoint> prev;
    int sift_frames = 0;
    for (std::size_t i = 0; i < 6; ++i) {
      auto cur = vision::ExtractSift(probe.video.frames[i].y());
      if (i > 0) vision::MatchSift(prev, cur);
      prev = std::move(cur);
      ++sift_frames;
    }
    model.sift_per_pixel = watch.ElapsedSeconds() / sift_frames / pixels;
  }

  // NN inference at the classifier input size.
  {
    nn::FrameClassifier classifier;
    const int reps = 3 * options.repetitions;
    watch.Start();
    for (int i = 0; i < reps; ++i) {
      auto embedding = classifier.Embed(probe.video.frames.front());
      if (embedding.empty()) return Status::Internal("calibration: empty embed");
    }
    model.nn_infer_per_frame = watch.ElapsedSeconds() / reps;
  }

  return model;
}

CostModel ReferenceCostModel() {
  CostModel model;
  model.seek_per_frame = 50e-9;           // 50 ns header hop
  model.decode_i_per_pixel = 40e-9;       // ~3 ms at 320x240
  model.decode_p_per_pixel = 25e-9;
  model.encode_still_per_pixel = 50e-9;
  model.resize_per_pixel = 10e-9;
  model.mse_per_pixel = 1.5e-9;
  model.sift_per_pixel = 120e-9;
  model.nn_infer_per_frame = 20e-3;
  return model;
}

}  // namespace sieve::core
