// The cloud-side results store and the NN placement knob, shared by the
// legacy SieveSystem facade and the multi-camera runtime (each camera
// session owns one ResultsDatabase).
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "synth/labels.h"

namespace sieve::core {

/// Where NN inference runs in the live pipeline.
enum class NnTier { kCloud, kEdge };

/// The cloud-side results store: (frame id, labels) tuples, queryable with
/// label propagation (Section III's output contract).
class ResultsDatabase {
 public:
  void Insert(std::size_t frame_id, synth::LabelSet labels);

  std::size_t size() const noexcept { return rows_.size(); }
  const std::map<std::size_t, synth::LabelSet>& rows() const noexcept {
    return rows_;
  }

  /// Label of an arbitrary frame: the labels of the latest analyzed frame at
  /// or before it (empty if none).
  synth::LabelSet LabelAt(std::size_t frame_id) const;

  /// Frame ranges whose propagated labels contain `cls` (event seek-back).
  /// Ranges are half-open [start, end); an event still live at the last
  /// analyzed frame is closed at `total_frames`, and empty ranges (an event
  /// opening exactly at `total_frames`) are not reported.
  std::vector<std::pair<std::size_t, std::size_t>> FindObject(
      synth::ObjectClass cls, std::size_t total_frames) const;

 private:
  std::map<std::size_t, synth::LabelSet> rows_;
};

}  // namespace sieve::core
