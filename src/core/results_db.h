// The cloud-side results store, shared by the legacy SieveSystem facade and
// the multi-camera runtime (each camera session owns one ResultsDatabase).
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "synth/labels.h"

namespace sieve::core {

/// Sentinel `end` of a label run that is still live at the last analyzed
/// row (no later row has dropped the class yet).
inline constexpr std::size_t kOpenInterval = std::size_t(-1);

/// The reusable interval-merge core of FindObject: scan the ordered
/// (frame, labels) rows and build the maximal half-open [start, end) runs
/// whose propagated labels contain `cls`. A run still live at the last row
/// is reported with end == kOpenInterval; callers decide how to close it
/// (FindObject clamps to total_frames, the live query index keeps it open
/// until the session seals).
std::vector<std::pair<std::size_t, std::size_t>> ClassIntervals(
    const std::map<std::size_t, synth::LabelSet>& rows, synth::ObjectClass cls);

/// The cloud-side results store: (frame id, labels) tuples, queryable with
/// label propagation (Section III's output contract).
class ResultsDatabase {
 public:
  /// Insert-observer seam: the live query layer hooks per-session inserts
  /// here (see query::QueryService). Called after the row has landed, on
  /// the inserting thread, under whatever lock the caller holds around
  /// Insert — so the db reference is safe to read for the call's duration.
  using InsertObserver = std::function<void(
      const ResultsDatabase& db, std::size_t frame_id,
      const synth::LabelSet& labels)>;

  void Insert(std::size_t frame_id, synth::LabelSet labels);

  /// Install (or clear, with nullptr) the insert observer. Not
  /// synchronized against concurrent Insert — the observer MUST be
  /// installed before the database receives its first Insert. Installing
  /// one later is a hard error (the observer would have missed rows, and
  /// downstream consumers like the query index would silently diverge):
  /// it aborts rather than corrupt. Rows loaded via Restore() don't count
  /// — replayed state may be re-observed from scratch.
  void set_observer(InsertObserver observer);

  /// Bulk-load recovered rows into an empty, unobserved database (journal
  /// replay at boot). Fails if any row was already inserted or an observer
  /// is installed; does not fire the observer and does not close the
  /// set_observer window, so the caller can attach one after restoring.
  Status Restore(std::map<std::size_t, synth::LabelSet> rows);

  std::size_t size() const noexcept { return rows_.size(); }
  const std::map<std::size_t, synth::LabelSet>& rows() const noexcept {
    return rows_;
  }

  /// Label of an arbitrary frame: the labels of the latest analyzed frame at
  /// or before it (empty if none).
  synth::LabelSet LabelAt(std::size_t frame_id) const;

  /// Frame ranges whose propagated labels contain `cls` (event seek-back).
  /// Ranges are half-open [start, end); an event still live at the last
  /// analyzed frame is closed at `total_frames`, and empty ranges (an event
  /// opening exactly at `total_frames`) are not reported.
  std::vector<std::pair<std::size_t, std::size_t>> FindObject(
      synth::ObjectClass cls, std::size_t total_frames) const;

 private:
  std::map<std::size_t, synth::LabelSet> rows_;
  InsertObserver observer_;
  bool inserted_ = false;  ///< any live Insert seen (Restore doesn't count)
};

}  // namespace sieve::core
