// The I-frame seeker (Figure 1): locate keyframes in a compressed stream by
// walking container metadata only — no entropy decoding, no pixels.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "codec/container.h"
#include "common/status.h"

namespace sieve::core {

struct SeekReport {
  std::vector<codec::FrameRecord> iframes;  ///< records of type I only
  std::size_t total_frames = 0;
  std::size_t bytes_scanned = 0;  ///< header bytes touched (not payloads)

  double iframe_rate() const noexcept {
    return total_frames ? double(iframes.size()) / double(total_frames) : 0.0;
  }
};

/// Walk the stream's frame index and keep I-frames. The returned report's
/// bytes_scanned documents how little of the stream this touches: the
/// per-frame fixed header, ~0.002% of a typical payload.
Expected<SeekReport> SeekIFrames(std::span<const std::uint8_t> bytes);

/// Frame indices of the selected I-frames (sorted).
std::vector<std::size_t> SelectedIndices(const SeekReport& report);

}  // namespace sieve::core
