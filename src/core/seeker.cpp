#include "core/seeker.h"

namespace sieve::core {

Expected<SeekReport> SeekIFrames(std::span<const std::uint8_t> bytes) {
  auto records = codec::WalkFrameIndex(bytes);
  if (!records.ok()) return records.status();
  SeekReport report;
  report.total_frames = records->size();
  report.bytes_scanned = codec::ContainerHeader::kSerializedSize +
                         records->size() * codec::FrameRecord::kHeaderSize;
  for (const auto& record : *records) {
    if (record.type == codec::FrameType::kIntra) {
      report.iframes.push_back(record);
    }
  }
  return report;
}

std::vector<std::size_t> SelectedIndices(const SeekReport& report) {
  std::vector<std::size_t> indices;
  indices.reserve(report.iframes.size());
  for (const auto& record : report.iframes) indices.push_back(record.index);
  return indices;
}

}  // namespace sieve::core
