#include "core/system.h"

#include <atomic>
#include <mutex>

#include "codec/decoder.h"
#include "codec/still.h"
#include "common/stopwatch.h"
#include "media/image_ops.h"

namespace sieve::core {

void ResultsDatabase::Insert(std::size_t frame_id, synth::LabelSet labels) {
  rows_[frame_id] = labels;
}

synth::LabelSet ResultsDatabase::LabelAt(std::size_t frame_id) const {
  auto it = rows_.upper_bound(frame_id);
  if (it == rows_.begin()) return synth::LabelSet();
  --it;
  return it->second;
}

std::vector<std::pair<std::size_t, std::size_t>> ResultsDatabase::FindObject(
    synth::ObjectClass cls, std::size_t total_frames) const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  bool open = false;
  std::size_t start = 0;
  synth::LabelSet current;
  std::size_t cursor = 0;
  for (const auto& [frame, labels] : rows_) {
    // Close/extend the open range across [cursor, frame) with `current`.
    if (open && !current.Contains(cls)) {
      open = false;
    }
    (void)cursor;
    if (labels.Contains(cls) && !open) {
      open = true;
      start = frame;
    } else if (!labels.Contains(cls) && open) {
      ranges.emplace_back(start, frame);
      open = false;
    }
    current = labels;
    cursor = frame;
  }
  if (open) ranges.emplace_back(start, total_frames);
  return ranges;
}

Expected<SystemReport> SieveSystem::Run(const codec::EncodedVideo& video,
                                        ResultsDatabase& db) {
  if (classifier_ == nullptr || !classifier_->fitted()) {
    return Status::Precondition("SieveSystem: classifier not fitted");
  }

  SystemReport report;
  net::RealizedLink camera_edge(config_.camera_to_edge, config_.link_time_scale);
  net::RealizedLink edge_cloud(config_.edge_to_cloud, config_.link_time_scale);

  std::atomic<std::size_t> selected{0};
  std::mutex db_mutex;
  std::size_t written = 0;

  dataflow::Pipeline pipeline(config_.queue_capacity);

  // --- Camera: stream frame records in capture order ----------------------
  std::size_t cursor = 0;
  pipeline.SetSource("camera", [this, &video, &cursor,
                                &camera_edge]() -> std::optional<dataflow::FlowFile> {
    if (cursor >= video.records.size()) return std::nullopt;
    const codec::FrameRecord& record = video.records[cursor++];
    dataflow::FlowFile file;
    // Payload: the frame's bytes as they cross camera->edge (header + data).
    file.payload().assign(
        video.bytes.begin() + std::ptrdiff_t(record.payload_offset) -
            std::ptrdiff_t(codec::FrameRecord::kHeaderSize),
        video.bytes.begin() + std::ptrdiff_t(record.payload_offset) +
            std::ptrdiff_t(record.payload_size));
    file.SetU64("frame", record.index);
    file.SetAttribute("type",
                      record.type == codec::FrameType::kIntra ? "I" : "P");
    camera_edge.Transfer(file.size());
    return file;
  });

  // --- Edge: I-frame seeker (metadata-only filter) ------------------------
  pipeline.AddStage(
      "edge/iframe-seeker",
      [&selected](dataflow::FlowFile file) -> std::optional<dataflow::FlowFile> {
        const auto type = file.GetAttribute("type");
        if (!type || *type != "I") return std::nullopt;  // P-frames: stored only
        selected.fetch_add(1, std::memory_order_relaxed);
        return file;
      });

  // --- Edge: decompress I-frame like a still, resize to the NN input, and
  // re-encode for the WAN ---------------------------------------------------
  const codec::ContainerHeader header = video.header;
  pipeline.AddStage(
      "edge/still-transcode",
      [this, header](dataflow::FlowFile file) -> std::optional<dataflow::FlowFile> {
        // Strip the 5-byte frame header to get the payload.
        codec::FrameRecord record;
        record.type = codec::FrameType::kIntra;
        record.payload_offset = 0;
        record.payload_size = file.size() - codec::FrameRecord::kHeaderSize;
        const std::span<const std::uint8_t> payload(
            file.payload().data() + codec::FrameRecord::kHeaderSize,
            record.payload_size);
        codec::RangeDecoder rc(payload);
        codec::FrameModels models;
        const codec::CodingContext ctx = codec::CodingContext::ForQp(header.qp);
        media::Frame frame(header.width, header.height);
        codec::DecodeIntraFrame(rc, models, ctx, frame);

        const media::Frame resized = media::ResizeFrame(
            frame, config_.nn_input_size, config_.nn_input_size);
        dataflow::FlowFile out(codec::EncodeStill(resized, config_.still_qp));
        out.SetU64("frame", file.GetU64("frame").value_or(0));
        return out;
      });

  // --- Edge -> cloud WAN ----------------------------------------------------
  const bool cloud = config_.nn_tier == NnTier::kCloud;
  pipeline.AddStage("wan",
                    [cloud, &edge_cloud](dataflow::FlowFile file)
                        -> std::optional<dataflow::FlowFile> {
                      if (cloud) edge_cloud.Transfer(file.size());
                      return file;
                    });

  // --- NN inference + results DB -------------------------------------------
  pipeline.SetSink("nn/classify", [this, &db, &db_mutex,
                                   &written](dataflow::FlowFile file) {
    auto still = codec::DecodeStill(file.payload());
    if (!still.ok()) return;
    auto labels = classifier_->Predict(*still);
    if (!labels.ok()) return;
    std::lock_guard<std::mutex> lock(db_mutex);
    db.Insert(std::size_t(file.GetU64("frame").value_or(0)), *labels);
    ++written;
  });

  Stopwatch watch;
  auto stages = pipeline.Run();
  if (!stages.ok()) return stages.status();

  report.wall_seconds = watch.ElapsedSeconds();
  report.frames_streamed = video.records.size();
  report.iframes_selected = selected.load();
  report.labels_written = written;
  report.fps = report.wall_seconds > 0
                   ? double(report.frames_streamed) / report.wall_seconds
                   : 0.0;
  report.camera_to_edge_bytes = camera_edge.meter().bytes();
  report.edge_to_cloud_bytes = edge_cloud.meter().bytes();
  report.stages = std::move(*stages);
  return report;
}

}  // namespace sieve::core
