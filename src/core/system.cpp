#include "core/system.h"

#include <span>

#include "common/stopwatch.h"
#include "runtime/runtime.h"

namespace sieve::core {

Expected<SystemReport> SieveSystem::Run(const codec::EncodedVideo& video,
                                        ResultsDatabase& db) {
  if (classifier_ == nullptr || !classifier_->fitted()) {
    return Status::Precondition("SieveSystem: classifier not fitted");
  }

  // Legacy tier knob -> session placement plan: kCloud ships transcoded
  // stills to a cloud-side classifier (split 0), kEdge runs the whole
  // network at the edge (split N, nothing crosses the WAN).
  runtime::RuntimeConfig runtime_config;
  runtime_config.default_placement = config_.nn_tier == NnTier::kEdge
                                         ? runtime::PlacementMode::kEdge
                                         : runtime::PlacementMode::kCloud;
  runtime_config.camera_to_edge = config_.camera_to_edge;
  runtime_config.edge_to_cloud = config_.edge_to_cloud;
  runtime_config.link_time_scale = config_.link_time_scale;
  runtime_config.nn_input_size = config_.nn_input_size;
  runtime_config.still_qp = config_.still_qp;
  runtime_config.queue_capacity = config_.queue_capacity;
  runtime::Runtime runtime(runtime_config, classifier_);

  runtime::SessionConfig session_config;
  session_config.width = video.header.width;
  session_config.height = video.header.height;
  session_config.fps = video.header.fps;
  session_config.encoder.qp = video.header.qp;  // edge decode context
  session_config.queue_capacity = config_.queue_capacity;
  auto session = runtime.OpenSession("camera", session_config);
  if (!session.ok()) return session.status();

  Stopwatch watch;
  const std::span<const std::uint8_t> bytes(video.bytes);
  for (const codec::FrameRecord& record : video.records) {
    // The frame's bytes as they cross camera->edge (header + payload).
    Status pushed = (*session)->PushEncoded(
        record.type, record.index,
        bytes.subspan(record.payload_offset - codec::FrameRecord::kHeaderSize,
                      codec::FrameRecord::kHeaderSize + record.payload_size));
    if (!pushed.ok()) return pushed;
  }
  const runtime::SessionReport session_report = (*session)->Drain();
  auto stages = runtime.Shutdown();
  if (!stages.ok()) return stages.status();

  SystemReport report;
  report.wall_seconds = watch.ElapsedSeconds();
  report.frames_streamed = session_report.frames_pushed;
  report.iframes_selected = session_report.iframes_selected;
  report.labels_written = session_report.labels_written;
  report.fps = report.wall_seconds > 0
                   ? double(report.frames_streamed) / report.wall_seconds
                   : 0.0;
  report.camera_to_edge_bytes = session_report.camera_to_edge_bytes;
  report.edge_to_cloud_bytes = session_report.edge_to_cloud_bytes;
  report.stages = std::move(*stages);
  for (const auto& [frame, labels] : (*session)->db().rows()) {
    db.Insert(frame, labels);
  }
  return report;
}

}  // namespace sieve::core
