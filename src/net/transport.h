// Reliable WAN transport: retry/timeout/backoff over a faulty link, plus
// measured link health.
//
// ReliableTransport is the runtime's send path for everything that crosses
// the edge->cloud WAN. It wraps a FaultyLink (net/fault.h) and turns that
// link's per-attempt failures into a hard per-message contract: Send()
// either delivers the payload or returns an explicit error — kUnavailable
// (retry budget exhausted), kDeadlineExceeded (the message aged out on the
// link clock), or kCancelled (shutdown) — never a silent loss. The caller
// (the runtime's wan stage) maps those errors onto per-session drop
// accounting, so every frame reconciles as delivered-or-dropped.
//
// Retry policy: exponential backoff with seeded jitter, a per-message
// attempt budget, and a per-message deadline on the virtual link clock. The
// backoff sleeps ride the link's cancel gate, so Runtime::Shutdown wakes a
// transport mid-backoff instantly.
//
// Health: every attempt feeds an EWMA loss estimate and a consecutive
// failure/success counter. Crossing the configured thresholds moves the
// link through kHealthy -> kDegraded -> kDown and back; the runtime
// observes transitions after each send and replans session placements
// (graceful degradation toward edge-only). EffectiveModel() folds the
// measured loss into the planner's LinkModel so ChooseSplit sees the WAN
// that actually exists, not the one that was configured.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/fault.h"
#include "net/link.h"
#include "obs/trace.h"

namespace sieve::net {

/// Retry/timeout policy for one message.
struct RetryPolicy {
  int max_attempts = 5;              ///< total attempts (first + retries)
  double initial_backoff_ms = 50.0;  ///< wait after the first failure
  double backoff_multiplier = 2.0;
  double max_backoff_ms = 2000.0;
  double jitter = 0.2;         ///< +/- fraction applied to each backoff
  double deadline_ms = 15000;  ///< per-message budget on the link clock
};

/// Thresholds for the health state machine.
struct HealthPolicy {
  int down_after_failures = 4;     ///< consecutive attempt failures -> kDown
  double degraded_loss = 0.30;     ///< EWMA loss above -> kDegraded
  double healthy_loss = 0.10;      ///< EWMA loss below (plus successes) ->
                                   ///< eligible for kHealthy
  int promote_after_successes = 3; ///< consecutive successes to re-promote
  double loss_alpha = 0.30;        ///< EWMA smoothing per attempt
};

enum class LinkHealth { kHealthy, kDegraded, kDown };

const char* LinkHealthName(LinkHealth health) noexcept;

/// Counters snapshot; all values are totals since construction.
struct TransportStats {
  std::uint64_t messages_sent = 0;       ///< Send() calls
  std::uint64_t messages_delivered = 0;
  std::uint64_t messages_dropped = 0;    ///< explicit give-ups
  std::uint64_t attempts = 0;
  std::uint64_t retries = 0;             ///< attempts beyond each first
  std::uint64_t duplicates = 0;
  std::uint64_t corrupted_deliveries = 0;
  std::uint64_t probes = 0;
  std::uint64_t health_transitions = 0;
  double loss_ewma = 0.0;
  LinkHealth health = LinkHealth::kHealthy;
  double link_clock_seconds = 0.0;
};

/// Outcome of one Send().
struct SendOutcome {
  Status status;           ///< Ok / Unavailable / DeadlineExceeded / Cancelled
  int attempts = 1;
  bool corrupted = false;  ///< delivered, but bits flipped in transit
  std::uint64_t retransmit_bytes = 0;  ///< wasted attempt + duplicate bytes
  double modelled_seconds = 0.0;       ///< link time the message consumed
};

class ReliableTransport {
 public:
  ReliableTransport(LinkModel model, double time_scale, FaultPlan faults,
                    RetryPolicy retry = {}, HealthPolicy health = {});

  /// Deliver `payload` or fail explicitly. Blocks through retries/backoffs
  /// (all waits scaled by the link's time_scale and interruptible by
  /// Cancel). `now_hint` is the sender's stream position in seconds; it
  /// ratchets the link clock so scripted outages and per-message deadlines
  /// track stream content. The payload may come back corrupted — transport
  /// integrity is the downstream decoder's problem, by design (that is what
  /// the hardened parsers are for). `ctx` is the frame's trace identity:
  /// when tracing is on, every retry becomes a "wan/retry" instant (attempt
  /// number + backoff) and the final outcome a "wan/sent" or "wan/drop"
  /// instant on the frame's track, so backoff storms are visible per frame.
  SendOutcome Send(std::span<std::uint8_t> payload, double now_hint = 0.0,
                   obs::TraceContext ctx = {});

  /// Cheap keepalive. Always advances the link clock; when the link is not
  /// healthy (and at most every kProbeIntervalSeconds of link time) it also
  /// sends a tiny probe so recovery is detected even while every session
  /// has fallen back to edge-only and no payload crosses the WAN.
  void Probe(double now_hint);

  /// Wake every in-progress wait; all further sends fail with kCancelled.
  void Cancel() { link_.Cancel(); }

  LinkHealth health() const;
  /// The configured model with the measured loss folded in: retransmissions
  /// eat bandwidth (factor 1-p) and stretch expected latency (the mean
  /// geometric retry count 1/(1-p) multiplies the RTT).
  LinkModel EffectiveModel() const;
  TransportStats stats() const;

  ByteMeter& meter() noexcept { return link_.meter(); }
  const ByteMeter& meter() const noexcept { return link_.meter(); }
  const LinkModel& model() const noexcept { return link_.model(); }
  FaultyLink& faulty_link() noexcept { return link_; }

  static constexpr std::size_t kProbeBytes = 64;
  static constexpr double kProbeIntervalSeconds = 0.25;

 private:
  void NoteAttempt(bool success);  ///< EWMA + health transition bookkeeping

  FaultyLink link_;
  RetryPolicy retry_;
  HealthPolicy health_policy_;
  Rng jitter_rng_;

  mutable std::mutex mutex_;  ///< guards stats_ + health state
  TransportStats stats_;
  int consecutive_failures_ = 0;
  int consecutive_successes_ = 0;
  double last_probe_ = -1e9;  ///< link-clock time of the last real probe
};

}  // namespace sieve::net
