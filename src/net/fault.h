// Deterministic WAN fault injection.
//
// A FaultPlan is a seeded, scriptable chaos schedule for one link: per-send
// probabilities of packet drop, payload corruption, duplication, and latency
// spikes, plus hard outage windows scripted on the link clock. FaultyLink
// wraps a RealizedLink and applies the plan to every transfer, so chaos is
// exactly replayable: the same seed produces the same per-message decision
// sequence regardless of wall-clock speed (the link clock is virtual —
// advanced by modelled transfer/backoff time and by caller-supplied stream
// time, never by the host clock).
//
// FaultyLink models a single unreliable hop; it does not retry. The
// retry/timeout/backoff send path lives one layer up in ReliableTransport
// (net/transport.h), which drives this link and turns its per-attempt
// failures into delivered-or-dropped message outcomes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "net/link.h"

namespace sieve::net {

/// The scripted chaos schedule for one link. Default-constructed: a perfect
/// link (every probability zero, no outages) — the runtime's default.
struct FaultPlan {
  std::uint64_t seed = 1;            ///< drives every stochastic decision
  double drop_probability = 0.0;     ///< attempt silently lost in transit
  double corrupt_probability = 0.0;  ///< delivered, but payload bits flipped
  double duplicate_probability = 0.0;  ///< delivered twice (receiver dedups)
  double spike_probability = 0.0;    ///< extra latency added to the attempt
  double spike_ms = 250.0;           ///< magnitude of a latency spike

  /// Hard outage: every attempt inside [begin, end) on the link clock fails.
  struct Outage {
    double begin_seconds = 0.0;
    double end_seconds = 0.0;
  };
  std::vector<Outage> outages;

  bool any() const noexcept {
    return drop_probability > 0 || corrupt_probability > 0 ||
           duplicate_probability > 0 || spike_probability > 0 ||
           !outages.empty();
  }
  bool InOutage(double now_seconds) const noexcept {
    for (const Outage& o : outages) {
      if (now_seconds >= o.begin_seconds && now_seconds < o.end_seconds) {
        return true;
      }
    }
    return false;
  }
};

/// What the injector decided for one send attempt.
struct FaultDecision {
  bool outage = false;     ///< inside a scripted outage window
  bool drop = false;       ///< stochastic packet loss
  bool corrupt = false;    ///< deliver with flipped payload bits
  bool duplicate = false;  ///< deliver, then transmit a wasted copy
  double spike_seconds = 0.0;      ///< extra modelled latency
  std::uint64_t corrupt_seed = 0;  ///< seeds the byte flips when corrupt
};

/// Seeded per-attempt decision source. Thread-safe; decisions depend only
/// on the seed, the draw sequence, and the supplied link-clock time — never
/// on wall time — so a fixed-seed chaos run replays the same fault pattern.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan)
      : plan_(std::move(plan)), rng_(plan_.seed) {}

  /// Decide the fate of the next send attempt at link-clock `now_seconds`.
  FaultDecision Next(double now_seconds);

  /// Deterministically flip a few payload bits (seeded by the decision).
  static void CorruptPayload(std::uint64_t seed,
                             std::span<std::uint8_t> payload);

  const FaultPlan& plan() const noexcept { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
  std::mutex mutex_;
};

/// One unreliable realized hop: a RealizedLink plus a FaultPlan plus the
/// virtual link clock the plan's outage windows are scripted against.
class FaultyLink {
 public:
  FaultyLink(LinkModel model, double time_scale, FaultPlan plan)
      : link_(model, time_scale), injector_(std::move(plan)) {}

  struct TransferResult {
    Status status;                 ///< Ok / Unavailable (lost) / Cancelled
    double modelled_seconds = 0.0;  ///< time the attempt occupied the link
    bool corrupted = false;
    bool duplicated = false;
  };

  /// One send attempt. `now_hint` (stream seconds) ratchets the link clock
  /// forward before the fault decision — callers embed the sender's stream
  /// position so scripted outages line up with stream content, not wall
  /// time. The payload may be corrupted in place (that is the point).
  /// A lost attempt still occupies the link for its modelled duration (the
  /// sender waits out the ack timeout) but delivers and meters nothing.
  TransferResult Transfer(std::span<std::uint8_t> payload,
                          double now_hint = 0.0);

  /// Interruptible scaled wait that also advances the link clock (the
  /// transport's backoff sleeps must move scripted outages along).
  /// Returns false if cancelled.
  bool Wait(double modelled_seconds);

  void Cancel() { link_.Cancel(); }
  bool cancelled() const noexcept { return link_.cancelled(); }

  /// Ratchet the link clock to at least `stream_seconds` without
  /// transferring anything (label-only traffic still marks time).
  void ObserveTime(double stream_seconds) { (void)AdvanceTo(stream_seconds); }

  /// The virtual link clock (seconds): max of accumulated modelled time and
  /// every hint seen so far. Monotone.
  double now() const;

  RealizedLink& link() noexcept { return link_; }
  const LinkModel& model() const noexcept { return link_.model(); }
  ByteMeter& meter() noexcept { return link_.meter(); }
  const ByteMeter& meter() const noexcept { return link_.meter(); }
  const FaultPlan& plan() const noexcept { return injector_.plan(); }

 private:
  double AdvanceTo(double hint);       ///< ratchet, returns the new now
  void AdvanceBy(double seconds);

  RealizedLink link_;
  FaultInjector injector_;
  mutable std::mutex clock_mutex_;
  double clock_ = 0.0;
};

}  // namespace sieve::net
