#include "net/transport.h"

#include <algorithm>
#include <array>

namespace sieve::net {

const char* LinkHealthName(LinkHealth health) noexcept {
  switch (health) {
    case LinkHealth::kHealthy: return "healthy";
    case LinkHealth::kDegraded: return "degraded";
    case LinkHealth::kDown: return "down";
  }
  return "unknown";
}

ReliableTransport::ReliableTransport(LinkModel model, double time_scale,
                                     FaultPlan faults, RetryPolicy retry,
                                     HealthPolicy health)
    : link_(model, time_scale, faults),
      retry_(retry),
      health_policy_(health),
      // Decorrelate the backoff jitter from the fault schedule: both are
      // replayable, neither perturbs the other's draw sequence.
      jitter_rng_(Rng(faults.seed).Fork(0x6a69747465720000ULL)) {}

void ReliableTransport::NoteAttempt(bool success) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.attempts;
  const double a = health_policy_.loss_alpha;
  stats_.loss_ewma = a * (success ? 0.0 : 1.0) + (1.0 - a) * stats_.loss_ewma;
  if (success) {
    consecutive_failures_ = 0;
    ++consecutive_successes_;
  } else {
    consecutive_successes_ = 0;
    ++consecutive_failures_;
  }
  LinkHealth next = stats_.health;
  if (consecutive_failures_ >= health_policy_.down_after_failures) {
    next = LinkHealth::kDown;
  } else if (stats_.health == LinkHealth::kHealthy &&
             stats_.loss_ewma > health_policy_.degraded_loss) {
    next = LinkHealth::kDegraded;
  } else if (stats_.health != LinkHealth::kHealthy &&
             stats_.loss_ewma < health_policy_.healthy_loss &&
             consecutive_successes_ >= health_policy_.promote_after_successes) {
    next = LinkHealth::kHealthy;
  }
  if (next != stats_.health) {
    stats_.health = next;
    ++stats_.health_transitions;
  }
}

SendOutcome ReliableTransport::Send(std::span<std::uint8_t> payload,
                                    double now_hint, obs::TraceContext ctx) {
  SendOutcome outcome;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.messages_sent;
  }
  const double start = std::max(link_.now(), now_hint);
  const double deadline = start + retry_.deadline_ms / 1e3;
  double backoff_ms = retry_.initial_backoff_ms;
  for (int attempt = 1;; ++attempt) {
    outcome.attempts = attempt;
    const auto result = link_.Transfer(payload, now_hint);
    outcome.modelled_seconds += result.modelled_seconds;
    if (result.status.code() == ErrorCode::kCancelled) {
      outcome.status = result.status;
      break;
    }
    if (result.status.ok()) {
      NoteAttempt(true);
      std::lock_guard<std::mutex> lock(mutex_);
      ++stats_.messages_delivered;
      stats_.retries += std::uint64_t(attempt - 1);
      if (result.corrupted) ++stats_.corrupted_deliveries;
      if (result.duplicated) {
        ++stats_.duplicates;
        outcome.retransmit_bytes += payload.size();
      }
      outcome.corrupted = result.corrupted;
      outcome.status = Status::Ok();
      obs::RecordInstant("wan/sent", ctx, "attempts", std::uint64_t(attempt),
                         "corrupted", result.corrupted ? 1 : 0);
      return outcome;
    }
    // Lost attempt: the bytes crossed (part of) the link for nothing.
    NoteAttempt(false);
    outcome.retransmit_bytes += payload.size();
    link_.meter().RecordRetransmit(payload.size());
    obs::RecordInstant("wan/retry", ctx, "attempt", std::uint64_t(attempt),
                       "backoff_ms", std::uint64_t(backoff_ms));
    if (attempt >= retry_.max_attempts) {
      outcome.status =
          Status::Unavailable("transport: retry budget exhausted after " +
                              std::to_string(attempt) + " attempts");
      break;
    }
    const double jitter =
        1.0 + retry_.jitter * ([this] {
          std::lock_guard<std::mutex> lock(mutex_);
          return jitter_rng_.Uniform(-1.0, 1.0);
        }());
    const double backoff_s = backoff_ms * jitter / 1e3;
    if (link_.now() + backoff_s > deadline) {
      outcome.status =
          Status::DeadlineExceeded("transport: message deadline passed");
      break;
    }
    if (!link_.Wait(backoff_s)) {
      outcome.status = Status::Cancelled("transport: cancelled in backoff");
      break;
    }
    backoff_ms = std::min(backoff_ms * retry_.backoff_multiplier,
                          retry_.max_backoff_ms);
  }
  link_.meter().RecordDrop();
  obs::RecordInstant("wan/drop", ctx, "attempts",
                     std::uint64_t(outcome.attempts), "status",
                     std::uint64_t(outcome.status.code()));
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.messages_dropped;
  stats_.retries += std::uint64_t(outcome.attempts - 1);
  return outcome;
}

void ReliableTransport::Probe(double now_hint) {
  // Ratchet the clock even when no probe is due: label-only traffic from
  // edge-fallback sessions is what moves scripted outage windows along.
  link_.ObserveTime(now_hint);
  const double now = link_.now();
  bool probe_due = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stats_.health != LinkHealth::kHealthy &&
        now - last_probe_ >= kProbeIntervalSeconds) {
      last_probe_ = now;
      ++stats_.probes;
      probe_due = true;
    }
  }
  if (!probe_due) return;
  std::array<std::uint8_t, kProbeBytes> scratch{};
  const auto result = link_.Transfer(std::span<std::uint8_t>(scratch), now);
  if (result.status.code() != ErrorCode::kCancelled) {
    NoteAttempt(result.status.ok());
  }
}

LinkHealth ReliableTransport::health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_.health;
}

LinkModel ReliableTransport::EffectiveModel() const {
  double loss;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    loss = std::min(stats_.loss_ewma, 0.95);
  }
  LinkModel m = link_.model();
  m.bandwidth_mbps *= (1.0 - loss);
  m.rtt_ms /= (1.0 - loss);
  return m;
}

TransportStats ReliableTransport::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  TransportStats s = stats_;
  s.link_clock_seconds = link_.now();
  return s;
}

}  // namespace sieve::net
