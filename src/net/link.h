// Network link models and byte accounting.
//
// The evaluation controls the edge->cloud WAN at 30 Mbps; LinkModel captures
// bandwidth + propagation latency and converts byte counts to transfer
// times. ByteMeter accumulates what actually crossed each hop (the Figure 5
// quantities). RealizedLink additionally *enforces* the model in wall-clock
// time for the live threaded pipeline (sleeping for the serialization
// delay), so small-scale end-to-end runs experience the constrained WAN.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace sieve::net {

/// Bandwidth/latency abstraction of one hop.
struct LinkModel {
  double bandwidth_mbps = 30.0;  ///< payload bandwidth
  double rtt_ms = 20.0;          ///< per-message latency floor

  /// Seconds to move `bytes` across the link (serialization + latency).
  double TransferSeconds(std::size_t bytes) const noexcept {
    const double serialize = double(bytes) * 8.0 / (bandwidth_mbps * 1e6);
    return serialize + rtt_ms / 1e3;
  }

  /// The paper's WAN: 30 Mbps edge->cloud.
  static LinkModel Wan() { return LinkModel{30.0, 20.0}; }
  /// Camera->edge LAN: ample local bandwidth.
  static LinkModel Lan() { return LinkModel{1000.0, 1.0}; }
};

/// Thread-safe byte/message counters for one hop.
class ByteMeter {
 public:
  void Record(std::size_t bytes) noexcept {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }
  std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }
  double gigabytes() const noexcept { return double(bytes()) / 1e9; }
  void Reset() noexcept {
    bytes_.store(0);
    messages_.store(0);
  }

 private:
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
};

/// A link that really waits: Transfer() blocks the calling thread for the
/// modelled duration (scaled by `time_scale` so tests can compress time)
/// and meters the bytes.
class RealizedLink {
 public:
  explicit RealizedLink(LinkModel model, double time_scale = 1.0)
      : model_(model), time_scale_(time_scale) {}

  /// Blocks for the transfer duration; returns the modelled seconds.
  double Transfer(std::size_t bytes);

  const LinkModel& model() const noexcept { return model_; }
  ByteMeter& meter() noexcept { return meter_; }
  const ByteMeter& meter() const noexcept { return meter_; }

 private:
  LinkModel model_;
  double time_scale_;
  ByteMeter meter_;
};

}  // namespace sieve::net
