// Network link models and byte accounting.
//
// The evaluation controls the edge->cloud WAN at 30 Mbps; LinkModel captures
// bandwidth + propagation latency and converts byte counts to transfer
// times. ByteMeter accumulates what actually crossed each hop (the Figure 5
// quantities) and, since the transport grew retries, distinguishes goodput
// from retransmissions. RealizedLink additionally *enforces* the model in
// wall-clock time for the live threaded pipeline (sleeping for the
// serialization delay), so small-scale end-to-end runs experience the
// constrained WAN. Its waits are interruptible: Cancel() wakes an
// in-progress Transfer early (shutdown must never block for a modelled
// 20-second outage).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/status.h"

namespace sieve::net {

/// Bandwidth/latency abstraction of one hop.
struct LinkModel {
  double bandwidth_mbps = 30.0;  ///< payload bandwidth
  double rtt_ms = 20.0;          ///< per-message latency floor

  /// Seconds to move `bytes` across the link (serialization + latency).
  double TransferSeconds(std::size_t bytes) const noexcept {
    const double serialize = double(bytes) * 8.0 / (bandwidth_mbps * 1e6);
    return serialize + rtt_ms / 1e3;
  }

  /// The paper's WAN: 30 Mbps edge->cloud.
  static LinkModel Wan() { return LinkModel{30.0, 20.0}; }
  /// Camera->edge LAN: ample local bandwidth.
  static LinkModel Lan() { return LinkModel{1000.0, 1.0}; }
};

/// Thread-safe byte/message counters for one hop. `bytes`/`messages` count
/// goodput — payloads that were actually delivered. Retransmissions (failed
/// attempts, duplicates) and explicit drops are tracked separately so the
/// Figure-5 accounting can report both what the application received and
/// what the link really carried.
class ByteMeter {
 public:
  void Record(std::size_t bytes) noexcept {
    bytes_.fetch_add(bytes, std::memory_order_relaxed);
    messages_.fetch_add(1, std::memory_order_relaxed);
  }
  /// Bytes wasted on attempts that did not deliver (retries, duplicates).
  void RecordRetransmit(std::size_t bytes) noexcept {
    retransmit_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    retransmits_.fetch_add(1, std::memory_order_relaxed);
  }
  /// One message explicitly given up on (deadline / retry budget / cancel).
  void RecordDrop() noexcept {
    drops_.fetch_add(1, std::memory_order_relaxed);
  }
  /// A delivery previously counted as goodput turned out corrupt (the
  /// downstream decoder rejected it): move its bytes out of goodput into
  /// the corrupt column. Without this, a delivered-but-unusable payload
  /// inflates the Figure-5 "useful bytes" while the frame itself is counted
  /// dropped — the meters and the frame ledger would disagree.
  void ReclassifyCorrupt(std::size_t bytes) noexcept {
    bytes_.fetch_sub(bytes, std::memory_order_relaxed);
    corrupt_bytes_.fetch_add(bytes, std::memory_order_relaxed);
    corrupted_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t bytes() const noexcept {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t retransmit_bytes() const noexcept {
    return retransmit_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t retransmits() const noexcept {
    return retransmits_.load(std::memory_order_relaxed);
  }
  std::uint64_t drops() const noexcept {
    return drops_.load(std::memory_order_relaxed);
  }
  /// Bytes delivered but rejected as corrupt downstream (not goodput).
  std::uint64_t corrupt_bytes() const noexcept {
    return corrupt_bytes_.load(std::memory_order_relaxed);
  }
  std::uint64_t corrupted() const noexcept {
    return corrupted_.load(std::memory_order_relaxed);
  }
  /// Everything the link carried: goodput + retransmitted + corrupt bytes.
  std::uint64_t total_bytes() const noexcept {
    return bytes() + retransmit_bytes() + corrupt_bytes();
  }
  double gigabytes() const noexcept { return double(bytes()) / 1e9; }
  void Reset() noexcept {
    // Relaxed like every other access: the counters are independent
    // statistics, not synchronization points.
    bytes_.store(0, std::memory_order_relaxed);
    messages_.store(0, std::memory_order_relaxed);
    retransmit_bytes_.store(0, std::memory_order_relaxed);
    retransmits_.store(0, std::memory_order_relaxed);
    drops_.store(0, std::memory_order_relaxed);
    corrupt_bytes_.store(0, std::memory_order_relaxed);
    corrupted_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> bytes_{0};
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> retransmit_bytes_{0};
  std::atomic<std::uint64_t> retransmits_{0};
  std::atomic<std::uint64_t> drops_{0};
  std::atomic<std::uint64_t> corrupt_bytes_{0};
  std::atomic<std::uint64_t> corrupted_{0};
};

/// A link that really waits: Transfer() blocks the calling thread for the
/// modelled duration (scaled by `time_scale` so tests can compress time)
/// and meters the bytes on completion. Cancel() wakes any in-progress wait
/// and makes all further waits return immediately — Transfer then reports
/// kCancelled and the bytes are not metered (they never finished crossing).
class RealizedLink {
 public:
  explicit RealizedLink(LinkModel model, double time_scale = 1.0)
      : model_(model), time_scale_(time_scale) {}

  /// Blocks for the scaled transfer duration, then meters the bytes. The
  /// modelled (unscaled) seconds are returned through `modelled_seconds`
  /// when non-null, whether or not the wait completed. Returns kCancelled
  /// if Cancel() arrived before or during the wait.
  Status Transfer(std::size_t bytes, double* modelled_seconds = nullptr);

  /// Interruptible wait of `modelled_seconds * time_scale` wall seconds (no
  /// metering) — the transport's backoff sleeps ride the same cancel gate
  /// as transfers. Returns false if cancelled.
  bool WaitScaled(double modelled_seconds);

  /// Wake any in-progress wait and fail all future ones. Sticky; safe from
  /// any thread, any number of times.
  void Cancel();
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_acquire);
  }

  const LinkModel& model() const noexcept { return model_; }
  double time_scale() const noexcept { return time_scale_; }
  ByteMeter& meter() noexcept { return meter_; }
  const ByteMeter& meter() const noexcept { return meter_; }

 private:
  LinkModel model_;
  double time_scale_;
  ByteMeter meter_;
  std::atomic<bool> cancelled_{false};
  std::mutex cancel_mutex_;
  std::condition_variable cancel_cv_;
};

}  // namespace sieve::net
