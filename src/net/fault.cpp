#include "net/fault.h"

#include <algorithm>

namespace sieve::net {

FaultDecision FaultInjector::Next(double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  FaultDecision d;
  if (plan_.InOutage(now_seconds)) {
    d.outage = true;
    return d;  // an outage consumes no random draws: replay stays aligned
  }
  if (!plan_.any()) return d;
  // Fixed draw order per attempt keeps the stream aligned across replays
  // even when individual probabilities are zero.
  const bool drop = rng_.Chance(plan_.drop_probability);
  const bool corrupt = rng_.Chance(plan_.corrupt_probability);
  const bool duplicate = rng_.Chance(plan_.duplicate_probability);
  const bool spike = rng_.Chance(plan_.spike_probability);
  const std::uint64_t corrupt_seed = rng_.UniformU64(1, ~std::uint64_t(0));
  if (drop) {
    d.drop = true;
    return d;
  }
  d.corrupt = corrupt;
  d.duplicate = duplicate;
  d.corrupt_seed = corrupt_seed;
  if (spike) d.spike_seconds = plan_.spike_ms / 1e3;
  return d;
}

void FaultInjector::CorruptPayload(std::uint64_t seed,
                                   std::span<std::uint8_t> payload) {
  if (payload.empty()) return;
  Rng rng(seed);
  // A burst of 1..8 single-bit flips: enough to break magic bytes, length
  // fields, or float payloads, small enough that most flips land mid-stream
  // and exercise the decoders' entropy-level robustness.
  const int flips = rng.UniformInt(1, 8);
  for (int i = 0; i < flips; ++i) {
    const std::size_t pos =
        std::size_t(rng.UniformU64(0, payload.size() - 1));
    payload[pos] ^= std::uint8_t(1u << rng.UniformInt(0, 7));
  }
}

double FaultyLink::AdvanceTo(double hint) {
  std::lock_guard<std::mutex> lock(clock_mutex_);
  clock_ = std::max(clock_, hint);
  return clock_;
}

void FaultyLink::AdvanceBy(double seconds) {
  if (seconds <= 0) return;
  std::lock_guard<std::mutex> lock(clock_mutex_);
  clock_ += seconds;
}

double FaultyLink::now() const {
  std::lock_guard<std::mutex> lock(clock_mutex_);
  return clock_;
}

bool FaultyLink::Wait(double modelled_seconds) {
  AdvanceBy(modelled_seconds);
  return link_.WaitScaled(modelled_seconds);
}

FaultyLink::TransferResult FaultyLink::Transfer(
    std::span<std::uint8_t> payload, double now_hint) {
  TransferResult result;
  const double now = AdvanceTo(now_hint);
  const FaultDecision decision = injector_.Next(now);
  const double seconds =
      model().TransferSeconds(payload.size()) + decision.spike_seconds;
  result.modelled_seconds = seconds;
  AdvanceBy(seconds);
  if (decision.outage || decision.drop) {
    // The attempt occupies the link until the sender's ack timeout; nothing
    // arrives, nothing is metered as goodput.
    if (!link_.WaitScaled(seconds)) {
      result.status = Status::Cancelled("link: transfer interrupted");
      return result;
    }
    result.status = decision.outage
                        ? Status::Unavailable("link: outage window")
                        : Status::Unavailable("link: packet lost");
    return result;
  }
  if (!link_.WaitScaled(seconds)) {
    result.status = Status::Cancelled("link: transfer interrupted");
    return result;
  }
  meter().Record(payload.size());
  if (decision.corrupt) {
    FaultInjector::CorruptPayload(decision.corrupt_seed, payload);
    result.corrupted = true;
  }
  if (decision.duplicate) {
    // The receiver dedups by sequence number; the copy only wastes link
    // time and bytes.
    AdvanceBy(seconds);
    (void)link_.WaitScaled(seconds);
    meter().RecordRetransmit(payload.size());
    result.duplicated = true;
  }
  result.status = Status::Ok();
  return result;
}

}  // namespace sieve::net
