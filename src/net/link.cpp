#include "net/link.h"

#include <chrono>
#include <thread>

namespace sieve::net {

double RealizedLink::Transfer(std::size_t bytes) {
  const double seconds = model_.TransferSeconds(bytes);
  meter_.Record(bytes);
  const double wait = seconds * time_scale_;
  if (wait > 0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(wait));
  }
  return seconds;
}

}  // namespace sieve::net
