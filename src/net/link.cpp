#include "net/link.h"

#include <chrono>

namespace sieve::net {

bool RealizedLink::WaitScaled(double modelled_seconds) {
  if (cancelled_.load(std::memory_order_acquire)) return false;
  const double wait = modelled_seconds * time_scale_;
  if (wait <= 0) return true;
  std::unique_lock<std::mutex> lock(cancel_mutex_);
  cancel_cv_.wait_for(lock, std::chrono::duration<double>(wait), [this] {
    return cancelled_.load(std::memory_order_acquire);
  });
  return !cancelled_.load(std::memory_order_acquire);
}

Status RealizedLink::Transfer(std::size_t bytes, double* modelled_seconds) {
  const double seconds = model_.TransferSeconds(bytes);
  if (modelled_seconds != nullptr) *modelled_seconds = seconds;
  if (!WaitScaled(seconds)) {
    return Status::Cancelled("link: transfer interrupted by shutdown");
  }
  meter_.Record(bytes);
  return Status::Ok();
}

void RealizedLink::Cancel() {
  {
    std::lock_guard<std::mutex> lock(cancel_mutex_);
    cancelled_.store(true, std::memory_order_release);
  }
  cancel_cv_.notify_all();
}

}  // namespace sieve::net
