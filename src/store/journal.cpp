#include "store/journal.h"

#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"
#include "common/rng.h"

namespace sieve::store {

namespace {

std::array<std::uint32_t, 256> BuildCrcTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

std::vector<std::uint8_t> EncodeRegister(const std::string& route,
                                         const std::string& camera_id,
                                         double open_seconds, double fps) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(RecordType::kRegister));
  w.PutString(route);
  w.PutString(camera_id);
  w.PutF64(open_seconds);
  w.PutF64(fps);
  return w.Release();
}

std::vector<std::uint8_t> EncodeInsert(std::uint64_t frame,
                                       std::uint8_t label_bits) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(RecordType::kInsert));
  w.PutVarint(frame);
  w.PutU8(label_bits);
  return w.Release();
}

std::vector<std::uint8_t> EncodeSeal(std::uint64_t total_frames) {
  ByteWriter w;
  w.PutU8(static_cast<std::uint8_t>(RecordType::kSeal));
  w.PutVarint(total_frames);
  return w.Release();
}

/// Decode one checksummed payload. Returns error on any malformed field —
/// the caller treats that the same as a checksum failure.
Expected<JournalRecord> DecodePayload(std::span<const std::uint8_t> payload) {
  ByteReader r(payload);
  auto tag = r.GetU8();
  if (!tag.ok()) return tag.status();
  JournalRecord rec;
  switch (*tag) {
    case static_cast<std::uint8_t>(RecordType::kRegister): {
      rec.type = RecordType::kRegister;
      auto route = r.GetString();
      if (!route.ok()) return route.status();
      auto camera_id = r.GetString();
      if (!camera_id.ok()) return camera_id.status();
      auto open_s = r.GetF64();
      if (!open_s.ok()) return open_s.status();
      auto fps = r.GetF64();
      if (!fps.ok()) return fps.status();
      rec.route = std::move(*route);
      rec.camera_id = std::move(*camera_id);
      rec.open_seconds = *open_s;
      rec.fps = *fps;
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kInsert): {
      rec.type = RecordType::kInsert;
      auto frame = r.GetVarint();
      if (!frame.ok()) return frame.status();
      auto bits = r.GetU8();
      if (!bits.ok()) return bits.status();
      rec.frame = *frame;
      rec.label_bits = *bits;
      break;
    }
    case static_cast<std::uint8_t>(RecordType::kSeal): {
      rec.type = RecordType::kSeal;
      auto total = r.GetVarint();
      if (!total.ok()) return total.status();
      rec.total_frames = *total;
      break;
    }
    default:
      return Status::Corrupt("journal: unknown record type " +
                             std::to_string(int(*tag)));
  }
  if (!r.AtEnd()) {
    return Status::Corrupt("journal: trailing bytes in record payload");
  }
  return rec;
}

/// Try to decode the record framed at `pos`. On success returns the record
/// and advances `*next` past it; on failure leaves *next untouched.
Expected<JournalRecord> DecodeFramedAt(std::span<const std::uint8_t> bytes,
                                       std::size_t pos, std::size_t* next) {
  if (bytes.size() - pos < 8) {
    return Status::Corrupt("journal: truncated record header");
  }
  std::uint32_t len = 0;
  std::uint32_t crc = 0;
  std::memcpy(&len, bytes.data() + pos, 4);
  std::memcpy(&crc, bytes.data() + pos + 4, 4);
  if (len == 0 || len > kMaxRecordBytes) {
    return Status::Corrupt("journal: implausible record length " +
                           std::to_string(len));
  }
  if (bytes.size() - pos - 8 < len) {
    return Status::Corrupt("journal: truncated record payload");
  }
  auto payload = bytes.subspan(pos + 8, len);
  if (Crc32(payload.data(), payload.size()) != crc) {
    return Status::Corrupt("journal: record checksum mismatch");
  }
  auto rec = DecodePayload(payload);
  if (!rec.ok()) return rec.status();
  *next = pos + 8 + len;
  return rec;
}

}  // namespace

std::uint32_t Crc32(const std::uint8_t* data, std::size_t size) {
  static const std::array<std::uint32_t, 256> kTable = BuildCrcTable();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::string JournalFileName(const std::string& route) {
  std::string escaped;
  escaped.reserve(route.size());
  for (char ch : route) {
    const bool safe = (ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                      (ch >= '0' && ch <= '9') || ch == '-' || ch == '.';
    escaped.push_back(safe ? ch : '_');
  }
  // FNV-1a over the *unescaped* route keeps distinct routes that escape to
  // the same string ("cam#1" vs "cam_1") from colliding on disk.
  std::uint64_t h = 1469598103934665603ULL;
  for (char ch : route) {
    h ^= static_cast<std::uint8_t>(ch);
    h *= 1099511628211ULL;
  }
  char hex[9];
  std::snprintf(hex, sizeof hex, "%08x",
                static_cast<std::uint32_t>(h ^ (h >> 32)));
  return escaped + "-" + hex + ".wal";
}

Expected<JournalContents> ReadJournal(const std::string& path) {
  auto bytes_or = ReadFileBytes(path);
  if (!bytes_or.ok()) return bytes_or.status();
  const std::vector<std::uint8_t>& bytes = *bytes_or;

  if (bytes.size() < sizeof kJournalMagic ||
      std::memcmp(bytes.data(), kJournalMagic, sizeof kJournalMagic) != 0) {
    return Status::Corrupt("journal: bad magic in " + path);
  }

  JournalContents out;
  out.valid_bytes = sizeof kJournalMagic;
  std::span<const std::uint8_t> span(bytes);
  std::size_t pos = sizeof kJournalMagic;
  while (pos < bytes.size()) {
    std::size_t next = pos;
    auto rec = DecodeFramedAt(span, pos, &next);
    if (!rec.ok()) {
      // Bad record. Torn tail or mid-file corruption? A crash can only tear
      // the *end* of the file, so if any CRC-valid record exists after this
      // point the damage is internal. Bounded forward scan: try every byte
      // offset in the next 1 MiB (or to EOF) as a potential record start.
      const std::size_t scan_end =
          std::min(bytes.size(), pos + (std::size_t{1} << 20));
      bool later_valid = false;
      for (std::size_t probe = pos + 1; probe + 8 <= scan_end; ++probe) {
        std::size_t after = probe;
        if (DecodeFramedAt(span, probe, &after).ok()) {
          later_valid = true;
          break;
        }
      }
      if (later_valid) {
        out.mid_corruption = true;
      } else {
        out.tail_truncated = true;
      }
      break;
    }
    switch (rec->type) {
      case RecordType::kRegister:
        out.registered = true;
        out.route = rec->route;
        out.camera_id = rec->camera_id;
        out.open_seconds = rec->open_seconds;
        out.fps = rec->fps;
        break;
      case RecordType::kInsert:
        out.inserts.push_back({rec->frame, rec->label_bits});
        break;
      case RecordType::kSeal:
        // First seal wins, mirroring QueryIndex::Seal semantics.
        if (!out.sealed) {
          out.sealed = true;
          out.total_frames = rec->total_frames;
        }
        break;
    }
    ++out.records;
    pos = next;
    out.valid_bytes = pos;
  }
  return out;
}

JournalWriter::JournalWriter(std::string path, FsyncPolicy policy,
                             CrashPlan crash, obs::Registry* registry)
    : path_(std::move(path)), policy_(policy), crash_(crash) {
  if (registry != nullptr) {
    m_appends_ = registry->GetCounter("store.journal.appends");
    m_append_bytes_ = registry->GetCounter("store.journal.append_bytes");
    m_fsyncs_ = registry->GetCounter("store.journal.fsyncs");
    m_append_failures_ = registry->GetCounter("store.journal.append_failures");
    m_fsync_ms_ = registry->GetHistogram("store.journal.fsync_ms");
  }
}

JournalWriter::~JournalWriter() { (void)Close(); }

Expected<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, const FsyncPolicy& policy, const CrashPlan& crash,
    obs::Registry* registry) {
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec) && !ec &&
                      std::filesystem::file_size(path, ec) > 0 && !ec;

  std::uint64_t resume_bytes = sizeof kJournalMagic;
  if (exists) {
    auto contents = ReadJournal(path);
    if (!contents.ok()) return contents.status();
    if (contents->mid_corruption) {
      return Status::Corrupt("journal: mid-file corruption in " + path +
                             "; quarantine before reopening");
    }
    if (contents->tail_truncated) {
      // Drop the torn tail so the next append lands on a record boundary.
      if (::truncate(path.c_str(), off_t(contents->valid_bytes)) != 0) {
        return Status::Internal("journal: truncate(" + path +
                                ") failed: " + std::strerror(errno));
      }
    }
    resume_bytes = contents->valid_bytes;
  }

  std::unique_ptr<JournalWriter> w(
      new JournalWriter(path, policy, crash, registry));
  w->file_ = std::fopen(path.c_str(), exists ? "ab" : "wb");
  if (w->file_ == nullptr) {
    return Status::Internal("journal: fopen(" + path +
                            ") failed: " + std::strerror(errno));
  }
  if (exists) {
    // Resuming: the valid prefix counts as appended+flushed+synced (it was
    // sealed-or-synced by the previous incarnation, or survived its crash).
    w->appended_ = w->flushed_ = w->synced_ = resume_bytes;
  } else {
    if (std::fwrite(kJournalMagic, 1, sizeof kJournalMagic, w->file_) !=
        sizeof kJournalMagic) {
      return Status::Internal("journal: writing magic to " + path + " failed");
    }
    w->appended_ = sizeof kJournalMagic;
    Status s = w->Commit(/*force_sync=*/false);
    if (!s.ok()) return s;
  }
  return w;
}

Status JournalWriter::TriggerCrash(std::uint64_t survivor_bytes) {
  // Flush so every appended byte is in the file, then cut it to the
  // scripted survivor length — the post-mortem view of the scripted death.
  if (file_ != nullptr) {
    (void)std::fflush(file_);
    (void)std::fclose(file_);
    file_ = nullptr;
  }
  crashed_ = true;
  if (::truncate(path_.c_str(), off_t(survivor_bytes)) != 0) {
    return Status::Internal("journal: crash truncate(" + path_ +
                            ") failed: " + std::strerror(errno));
  }
  return Status::Unavailable("journal: scripted crash (survivors=" +
                             std::to_string(survivor_bytes) + " bytes)");
}

Status JournalWriter::AppendFramed(const std::vector<std::uint8_t>& payload) {
  if (crashed_) {
    return Status::Unavailable("journal: writer crashed");
  }
  if (file_ == nullptr) {
    return Status::Precondition("journal: writer closed");
  }

  const std::uint32_t len = static_cast<std::uint32_t>(payload.size());
  const std::uint32_t crc = Crc32(payload.data(), payload.size());
  std::uint8_t header[8];
  std::memcpy(header, &len, 4);
  std::memcpy(header + 4, &crc, 4);

  bool failed = std::fwrite(header, 1, 8, file_) != 8 ||
                std::fwrite(payload.data(), 1, len, file_) != len;
  if (failed) {
    if (m_append_failures_ != nullptr) m_append_failures_->Add();
    return Status::Internal("journal: append to " + path_ +
                            " failed: " + std::strerror(errno));
  }
  appended_ += 8 + len;
  records_ += 1;
  if (m_appends_ != nullptr) m_appends_->Add();
  if (m_append_bytes_ != nullptr) m_append_bytes_->Add(8 + len);

  if (crash_.crash_after_bytes > 0 && appended_ >= crash_.crash_after_bytes) {
    return TriggerCrash(std::min(appended_, crash_.crash_after_bytes));
  }
  if (crash_.crash_after_records > 0 && records_ >= crash_.crash_after_records) {
    return TriggerCrash(appended_);
  }

  ++since_flush_;
  ++since_sync_;
  const bool want_flush =
      policy_.flush_every > 0 && since_flush_ >= policy_.flush_every;
  const bool want_sync =
      policy_.fsync_every > 0 && since_sync_ >= policy_.fsync_every;
  if (want_flush || want_sync) {
    return Commit(want_sync);
  }
  return Status::Ok();
}

Status JournalWriter::Commit(bool force_sync) {
  if (std::fflush(file_) != 0) {
    return Status::Internal("journal: fflush(" + path_ +
                            ") failed: " + std::strerror(errno));
  }
  flushed_ = appended_;
  since_flush_ = 0;
  if (force_sync) {
    return DoSync();
  }
  return Status::Ok();
}

Status JournalWriter::DoSync() {
  fsyncs_ += 1;
  if (crash_.crash_at_fsync > 0 && fsyncs_ >= crash_.crash_at_fsync) {
    std::uint64_t survivors = appended_;
    if (crash_.survivors == CrashPlan::Survivors::kSyncedPlusTorn) {
      // Machine-crash model: the durable prefix survives for sure; of the
      // bytes between the last real fsync and now, a seeded-random prefix
      // made it to the platter.
      Rng rng(crash_.seed);
      survivors = synced_ + rng.UniformU64(0, appended_ - synced_);
    }
    return TriggerCrash(survivors);
  }

  const auto t0 = std::chrono::steady_clock::now();
  if (::fdatasync(::fileno(file_)) != 0) {
    return Status::Internal("journal: fdatasync(" + path_ +
                            ") failed: " + std::strerror(errno));
  }
  const auto t1 = std::chrono::steady_clock::now();
  if (m_fsync_ms_ != nullptr) {
    m_fsync_ms_->Record(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  if (m_fsyncs_ != nullptr) m_fsyncs_->Add();
  synced_ = appended_;
  since_sync_ = 0;
  return Status::Ok();
}

Status JournalWriter::AppendRegister(const std::string& route,
                                     const std::string& camera_id,
                                     double open_seconds, double fps) {
  return AppendFramed(EncodeRegister(route, camera_id, open_seconds, fps));
}

Status JournalWriter::AppendInsert(std::uint64_t frame,
                                   std::uint8_t label_bits) {
  return AppendFramed(EncodeInsert(frame, label_bits));
}

Status JournalWriter::AppendSeal(std::uint64_t total_frames) {
  Status s = AppendFramed(EncodeSeal(total_frames));
  if (!s.ok()) return s;
  return Sync();
}

Status JournalWriter::Sync() {
  if (crashed_) return Status::Unavailable("journal: writer crashed");
  if (file_ == nullptr) return Status::Precondition("journal: writer closed");
  return Commit(/*force_sync=*/true);
}

Status JournalWriter::Close() {
  if (file_ == nullptr) return Status::Ok();
  Status s = crashed_ ? Status::Ok() : Commit(/*force_sync=*/true);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  return s;
}

}  // namespace sieve::store
