#include "store/recovery.h"

#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>

#include "common/bytes.h"

namespace sieve::store {

namespace fs = std::filesystem;

namespace {

/// Replace a mid-corrupt journal: move the damaged original aside for
/// post-mortem and rewrite the valid prefix as a fresh journal at `path`.
Status QuarantineAndRewrite(const std::string& path,
                            const JournalContents& contents) {
  auto prefix_or = ReadFileBytes(path);
  if (!prefix_or.ok()) return prefix_or.status();
  std::vector<std::uint8_t> prefix = std::move(*prefix_or);
  prefix.resize(contents.valid_bytes);

  std::error_code ec;
  // Pick a non-clobbering quarantine name (repeated corruption of the same
  // camera across boots must not destroy earlier evidence).
  std::string dest = path + ".quarantined";
  for (int i = 1; fs::exists(dest, ec); ++i) {
    dest = path + ".quarantined." + std::to_string(i);
  }
  fs::rename(path, dest, ec);
  if (ec) {
    return Status::Internal("store: quarantine rename " + path + " -> " +
                            dest + " failed: " + ec.message());
  }
  return WriteFileBytes(path, prefix);
}

}  // namespace

Expected<RecoveryReport> RecoverStore(const std::string& dir) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("store: cannot create " + dir + ": " +
                            ec.message());
  }

  // Deterministic scan order regardless of directory iteration order.
  std::vector<std::string> paths;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".wal") {
      paths.push_back(entry.path().string());
    }
  }
  if (ec) {
    return Status::Internal("store: cannot scan " + dir + ": " + ec.message());
  }
  std::sort(paths.begin(), paths.end());

  RecoveryReport report;
  for (const std::string& path : paths) {
    ++report.files;
    auto contents = ReadJournal(path);
    if (!contents.ok()) {
      // Bad magic / unreadable: nothing in the file is trustworthy. Move
      // the whole file aside so a writer can claim the name later.
      ++report.unreadable;
      std::string dest = path + ".quarantined";
      std::error_code rec;
      for (int i = 1; fs::exists(dest, rec); ++i) {
        dest = path + ".quarantined." + std::to_string(i);
      }
      fs::rename(path, dest, rec);
      if (rec) {
        return Status::Internal("store: quarantine rename " + path +
                                " failed: " + rec.message());
      }
      continue;
    }

    bool quarantined = false;
    if (contents->mid_corruption) {
      Status s = QuarantineAndRewrite(path, *contents);
      if (!s.ok()) return s;
      quarantined = true;
      ++report.quarantined;
    } else if (contents->tail_truncated) {
      if (::truncate(path.c_str(), off_t(contents->valid_bytes)) != 0) {
        return Status::Internal("store: truncate(" + path +
                                ") failed: " + std::strerror(errno));
      }
      ++report.truncated_tails;
    }
    report.records += contents->records;

    if (!contents->registered) {
      // Crashed before the registration record survived: an empty
      // incarnation. The (now repaired) file stays; it simply names no
      // camera to rebuild.
      continue;
    }

    RecoveredCamera cam;
    cam.route = contents->route;
    cam.camera_id = contents->camera_id;
    cam.open_seconds = contents->open_seconds;
    cam.fps = contents->fps;
    cam.inserts = std::move(contents->inserts);
    cam.sealed = contents->sealed;
    cam.total_frames = contents->total_frames;
    cam.tail_truncated = contents->tail_truncated;
    cam.quarantined = quarantined;
    cam.path = path;
    for (const auto& ins : cam.inserts) {
      cam.high_water = std::max(cam.high_water, ins.frame);
      cam.has_rows = true;
    }
    report.cameras.push_back(std::move(cam));
  }

  std::sort(report.cameras.begin(), report.cameras.end(),
            [](const RecoveredCamera& a, const RecoveredCamera& b) {
              return a.route < b.route;
            });
  return report;
}

}  // namespace sieve::store
