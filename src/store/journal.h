// Per-camera write-ahead journal: the durability layer under the results
// store (docs/durability.md).
//
// One journal file holds one camera incarnation's result stream — a
// registration record (route, display id, stream-clock position), the
// in-order (frame, labels) inserts the cloud tier delivered, and at most
// one seal closing the stream at its final frame count. The file is
// append-only: an 8-byte magic header followed by length-prefixed,
// CRC32-checksummed records, so the reader can always tell a torn tail
// (process died mid-append: truncate to the last valid record and keep
// going) from mid-file corruption (bit rot / overwrite inside the valid
// region: quarantine the file, replay only the intact prefix, never crash).
//
// Durability policy is group-commit: appends land in a stdio buffer,
// FsyncPolicy::flush_every bounds how many records may sit there before a
// flush pushes them to the OS (they now survive a process crash), and
// FsyncPolicy::fsync_every bounds how many records may sit in the page
// cache before an fdatasync (they now survive a machine crash). Seal and
// Close always sync.
//
// CrashPlan is the seeded crash-point injection harness in the spirit of
// net::FaultPlan: it scripts the exact point on the write path where the
// "process" dies — a byte offset (torn mid-record tail), a record boundary,
// or the Nth fsync — and deterministically materializes the surviving
// prefix by truncating the real file there. Recovery code is thus testable
// at every prefix, replayably (tests/store/crash_matrix_test.cpp).
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics.h"

namespace sieve::store {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over a byte span — the
/// per-record checksum. Table-driven; no dependency outside this module.
std::uint32_t Crc32(const std::uint8_t* data, std::size_t size);

/// Journal record types (the u8 tag leading every payload).
enum class RecordType : std::uint8_t {
  kRegister = 1,  ///< route, camera_id, open_seconds, fps — first record
  kInsert = 2,    ///< frame id + label bits, in delivery order
  kSeal = 3,      ///< stream complete at total_frames
};

/// One decoded journal record.
struct JournalRecord {
  RecordType type = RecordType::kInsert;
  // kRegister fields.
  std::string route;
  std::string camera_id;
  double open_seconds = 0.0;
  double fps = 0.0;
  // kInsert fields.
  std::uint64_t frame = 0;
  std::uint8_t label_bits = 0;
  // kSeal fields.
  std::uint64_t total_frames = 0;
};

/// Group-commit cadence. Records are appended into a stdio buffer; `flush`
/// pushes them to the OS (survive process death), `fsync` to the device
/// (survive machine death). A cadence of N means "at most N records at
/// risk"; 1 = every record, 0 = never on the append path (still at seal
/// and close).
struct FsyncPolicy {
  std::uint32_t flush_every = 32;
  std::uint32_t fsync_every = 4096;
};

/// Seeded, scripted crash injection for the journal write path. Default:
/// disarmed (the production configuration). At most one trigger fires; the
/// writer then truncates its file to the scripted surviving prefix and
/// every later operation fails kUnavailable, exactly as if the process had
/// died at that point and the caller were looking at the file post-mortem.
struct CrashPlan {
  std::uint64_t seed = 1;  ///< drives the torn-prefix draw of kSyncedPlusTorn

  /// Crash when the total bytes appended (header included) reach this
  /// count; the surviving file is exactly this long — mid-record offsets
  /// produce torn tails. 0 = disabled.
  std::uint64_t crash_after_bytes = 0;
  /// Crash immediately after the Nth record is appended; the file survives
  /// exactly at that record boundary. 0 = disabled.
  std::uint64_t crash_after_records = 0;
  /// Crash during the Nth Sync(): what survives depends on `survivors`.
  /// 0 = disabled.
  std::uint64_t crash_at_fsync = 0;

  /// What a crash_at_fsync leaves on disk. kAllWritten models dying after
  /// the kernel received the write (everything appended survives);
  /// kSyncedPlusTorn models a machine crash — the previously fsynced
  /// prefix plus a seeded-random prefix of the unsynced bytes.
  enum class Survivors : std::uint8_t { kAllWritten, kSyncedPlusTorn };
  Survivors survivors = Survivors::kAllWritten;

  bool armed() const noexcept {
    return crash_after_bytes > 0 || crash_after_records > 0 ||
           crash_at_fsync > 0;
  }
};

/// Append side of one journal file. Not thread-safe: the runtime serializes
/// appends under the owning session's database lock (the observer seam).
class JournalWriter {
 public:
  /// Open `path` for appending. A missing or empty file is created fresh
  /// (magic header written); an existing journal is validated first — a
  /// torn tail is truncated away so the next record lands on a clean
  /// boundary, and a mid-file-corrupt journal is refused (recovery must
  /// quarantine it first). `registry` (optional) receives the store.*
  /// journal metrics; pass the runtime's registry or nullptr.
  static Expected<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, const FsyncPolicy& policy,
      const CrashPlan& crash = {}, obs::Registry* registry = nullptr);

  ~JournalWriter();
  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  Status AppendRegister(const std::string& route, const std::string& camera_id,
                        double open_seconds, double fps);
  Status AppendInsert(std::uint64_t frame, std::uint8_t label_bits);
  Status AppendSeal(std::uint64_t total_frames);

  /// Force flush + fdatasync now (the group-commit barrier).
  Status Sync();

  /// Sync and close the file. Idempotent; the destructor calls it.
  Status Close();

  /// True once a CrashPlan trigger fired (every later call fails).
  bool crashed() const noexcept { return crashed_; }
  /// Bytes of journal (header + records) appended through this writer's
  /// lifetime, including bytes a scripted crash later discarded.
  std::uint64_t appended_bytes() const noexcept { return appended_; }

 private:
  JournalWriter(std::string path, FsyncPolicy policy, CrashPlan crash,
                obs::Registry* registry);

  Status AppendFramed(const std::vector<std::uint8_t>& payload);
  /// Push stdio-buffered bytes to the OS / device per the group policy.
  Status Commit(bool force_sync);
  Status DoSync();
  /// Materialize a scripted crash: truncate the file to `survivor_bytes`
  /// and poison the writer.
  Status TriggerCrash(std::uint64_t survivor_bytes);

  const std::string path_;
  const FsyncPolicy policy_;
  CrashPlan crash_;
  std::FILE* file_ = nullptr;
  bool crashed_ = false;
  std::uint64_t appended_ = 0;   ///< bytes handed to fwrite (incl. header)
  std::uint64_t flushed_ = 0;    ///< bytes pushed to the OS (fflush)
  std::uint64_t synced_ = 0;     ///< bytes fdatasynced to the device
  std::uint64_t records_ = 0;    ///< records appended this writer lifetime
  std::uint32_t since_flush_ = 0;
  std::uint32_t since_sync_ = 0;
  std::uint64_t fsyncs_ = 0;

  // store.* metrics (null when no registry was supplied).
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_fsyncs_ = nullptr;
  obs::Counter* m_append_failures_ = nullptr;
  obs::Histogram* m_fsync_ms_ = nullptr;
};

/// Everything the reader could salvage from one journal file.
struct JournalContents {
  bool registered = false;
  std::string route;
  std::string camera_id;
  double open_seconds = 0.0;
  double fps = 0.0;

  struct Insert {
    std::uint64_t frame = 0;
    std::uint8_t label_bits = 0;
  };
  std::vector<Insert> inserts;  ///< in append (i.e. delivery) order
  bool sealed = false;
  std::uint64_t total_frames = 0;

  std::size_t records = 0;        ///< valid records decoded
  std::uint64_t valid_bytes = 0;  ///< header + valid prefix (truncate here)
  /// The file ended mid-record or with a checksum-failing final record — a
  /// crash artifact. The prefix is intact; appending may resume after
  /// truncating to valid_bytes.
  bool tail_truncated = false;
  /// A checksum failure *inside* the file (valid records follow the bad
  /// region): not a crash artifact but corruption. The prefix is intact;
  /// the file must be quarantined before any writer touches it.
  bool mid_corruption = false;
};

/// Decode as much of a journal as is trustworthy. Never crashes on hostile
/// bytes: every length is bounds-checked, every record checksummed. Fails
/// only when the file cannot be read or its magic is wrong (then nothing in
/// it is trustworthy and the caller quarantines the whole file).
Expected<JournalContents> ReadJournal(const std::string& path);

/// The on-disk filename for a route ("gate-7#12" ->
/// "gate-7_12-a1b2c3d4.wal"): unsafe characters replaced, a stable FNV-1a
/// hash suffix keeps escaped names collision-free.
std::string JournalFileName(const std::string& route);

/// Hard cap on one record's payload (a register record is route + id +
/// two doubles; inserts are ~12 bytes). Anything larger in a length prefix
/// is corruption, not data.
inline constexpr std::uint32_t kMaxRecordBytes = 1u << 16;

/// The 8-byte file magic ("SVWAL1\r\n" — the \r\n catches text-mode
/// transfer mangling the way PNG's does).
inline constexpr std::uint8_t kJournalMagic[8] = {'S', 'V', 'W', 'A',
                                                  'L', '1', '\r', '\n'};

}  // namespace sieve::store
