// Boot-time recovery over a store directory of per-camera journals.
//
// RecoverStore scans `dir` for `*.wal` files, decodes each with the
// crash-tolerant reader, and returns a per-camera report the runtime
// replays into fresh ResultsDatabases and the live QueryIndex before it
// accepts sessions (docs/durability.md). Recovery is also where damaged
// files are made safe to write again: a torn tail is truncated at the last
// valid record, and a mid-file-corrupt journal is quarantined — renamed to
// `<name>.quarantined` for post-mortem and replaced by a fresh journal
// holding only the trustworthy prefix — so a JournalWriter can always
// reopen the .wal that remains.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "store/journal.h"

namespace sieve::store {

/// Runtime-facing durability configuration (RuntimeConfig::store).
struct StoreOptions {
  /// Journal directory; empty = durability off (the default, and the
  /// pre-store behaviour: all state in memory).
  std::string dir;
  FsyncPolicy fsync;
  /// Crash injection applied to every journal writer the runtime opens.
  /// Disarmed by default; tests script it.
  CrashPlan crash;

  bool enabled() const noexcept { return !dir.empty(); }
};

/// One camera incarnation recovered from its journal.
struct RecoveredCamera {
  std::string route;      ///< incarnation key ("gate-7#12")
  std::string camera_id;  ///< display id ("gate-7")
  double open_seconds = 0.0;
  double fps = 0.0;
  /// Replayed rows in journal (i.e. delivery) order.
  std::vector<JournalContents::Insert> inserts;
  bool sealed = false;
  std::uint64_t total_frames = 0;
  /// Highest journaled frame id; a reconnecting camera resumes above this.
  std::uint64_t high_water = 0;
  bool has_rows = false;
  bool tail_truncated = false;  ///< crash artifact was trimmed on recovery
  bool quarantined = false;     ///< mid-file corruption was quarantined
  std::string path;             ///< the (possibly rewritten) .wal file
};

/// Aggregate result of scanning one store directory.
struct RecoveryReport {
  std::vector<RecoveredCamera> cameras;  ///< sorted by route
  std::size_t files = 0;            ///< .wal files examined
  std::size_t records = 0;          ///< valid records decoded
  std::size_t truncated_tails = 0;  ///< journals with a torn tail trimmed
  std::size_t quarantined = 0;      ///< journals quarantined + rewritten
  std::size_t unreadable = 0;       ///< files skipped whole (bad magic/IO)
};

/// Scan and repair a store directory. Creates `dir` if missing. Journals
/// that never registered a camera (crash before the first record survived)
/// are counted but produce no camera. Never fails on damaged journal
/// *content* — only on environmental errors (dir uncreatable, rename/IO
/// failures during quarantine).
Expected<RecoveryReport> RecoverStore(const std::string& dir);

}  // namespace sieve::store
