#include "sim/queue_network.h"

#include <algorithm>
#include <cassert>

namespace sieve::sim {

int QueueNetwork::AddStation(std::string name, int servers, ServiceFn service) {
  Station station;
  station.name = name;
  station.stats.name = std::move(name);
  station.servers = std::max(1, servers);
  station.service = std::move(service);
  stations_.push_back(std::move(station));
  return int(stations_.size()) - 1;
}

void QueueNetwork::Inject(Job job, std::vector<int> route, double arrival) {
  job.injected_at = arrival;
  sim_->ScheduleAt(arrival, [this, job = std::move(job),
                             route = std::move(route)]() mutable {
    ArriveAt(Pending{std::move(job), std::move(route), 0, sim_->Now()});
  });
}

void QueueNetwork::ArriveAt(Pending pending) {
  if (pending.hop >= pending.route.size()) {
    FinishJob(std::move(pending));
    return;
  }
  const int sid = pending.route[pending.hop];
  assert(sid >= 0 && std::size_t(sid) < stations_.size());
  Station& station = stations_[std::size_t(sid)];
  pending.enqueued_at = sim_->Now();
  station.queue.push_back(std::move(pending));
  station.stats.peak_queue =
      std::max(station.stats.peak_queue, station.queue.size());
  TryStart(sid);
}

void QueueNetwork::TryStart(int station_id) {
  Station& station = stations_[std::size_t(station_id)];
  while (station.busy < station.servers && !station.queue.empty()) {
    Pending pending = std::move(station.queue.front());
    station.queue.erase(station.queue.begin());
    ++station.busy;
    station.stats.total_wait_seconds += sim_->Now() - pending.enqueued_at;
    const double service = station.service(pending.job);
    station.stats.busy_seconds += service;
    ++station.stats.served;
    sim_->ScheduleIn(service, [this, station_id,
                               pending = std::move(pending)]() mutable {
      Station& s = stations_[std::size_t(station_id)];
      --s.busy;
      ++pending.hop;
      // Free the server first, then route the job onward.
      TryStart(station_id);
      ArriveAt(std::move(pending));
    });
  }
}

void QueueNetwork::FinishJob(Pending pending) {
  pending.job.completed_at = sim_->Now();
  ++completed_;
  makespan_ = std::max(makespan_, pending.job.completed_at);
  latency_sum_ += pending.job.completed_at - pending.job.injected_at;
}

void QueueNetwork::Run() { sim_->Run(); }

}  // namespace sieve::sim
