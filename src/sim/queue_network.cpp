#include "sim/queue_network.h"

#include <algorithm>
#include <cassert>
#include <memory>

namespace sieve::sim {

int QueueNetwork::AddStation(std::string name, int servers, ServiceFn service) {
  Station station;
  station.name = name;
  station.stats.name = std::move(name);
  station.servers = std::max(1, servers);
  station.service = std::move(service);
  stations_.push_back(std::move(station));
  return int(stations_.size()) - 1;
}

int QueueNetwork::AddBatchStation(std::string name, int servers,
                                  fleet::FleetSchedulerPolicy policy,
                                  BatchServiceFn service) {
  Station station;
  station.name = name;
  station.stats.name = std::move(name);
  station.servers = std::max(1, servers);
  station.batch = true;
  station.scheduler = fleet::FleetScheduler(policy);
  station.batch_service = std::move(service);
  stations_.push_back(std::move(station));
  return int(stations_.size()) - 1;
}

void QueueNetwork::Inject(Job job, std::vector<int> route, double arrival) {
  job.injected_at = arrival;
  sim_->ScheduleAt(arrival, [this, job = std::move(job),
                             route = std::move(route)]() mutable {
    ArriveAt(Pending{std::move(job), std::move(route), 0, sim_->Now()});
  });
}

void QueueNetwork::ArriveAt(Pending pending) {
  if (pending.hop >= pending.route.size()) {
    FinishJob(std::move(pending));
    return;
  }
  const int sid = pending.route[pending.hop];
  assert(sid >= 0 && std::size_t(sid) < stations_.size());
  Station& station = stations_[std::size_t(sid)];
  pending.enqueued_at = sim_->Now();
  station.queue.push_back(std::move(pending));
  station.stats.peak_queue =
      std::max(station.stats.peak_queue, station.queue.size());
  if (station.batch) {
    // The arriving job may not fill a batch; make sure the deadline can
    // still flush it. One wakeup per arrival keeps the logic stateless
    // (the event is a no-op if the job already flushed). The epsilon keeps
    // floating-point ages from landing a hair under the deadline.
    sim_->ScheduleIn(
        station.scheduler.policy().deadline_ms / 1e3 + 1e-9,
        [this, sid] { TryStartBatch(sid); });
    TryStartBatch(sid);
    return;
  }
  TryStart(sid);
}

void QueueNetwork::TryStartBatch(int station_id) {
  Station& station = stations_[std::size_t(station_id)];
  while (station.busy < station.servers && !station.queue.empty()) {
    const double oldest_age_ms =
        (sim_->Now() - station.queue.front().enqueued_at) * 1e3;
    if (!station.scheduler.ShouldFlush(station.queue.size(), oldest_age_ms)) {
      return;  // the per-arrival deadline wakeup will revisit
    }
    // Compose the batch exactly like the live batcher: fairness-planned
    // FIFO prefix keyed by Job::kind (the camera).
    std::vector<std::uint64_t> cameras;
    cameras.reserve(station.queue.size());
    for (const Pending& p : station.queue) cameras.push_back(p.job.kind);
    const std::vector<std::size_t> plan = station.scheduler.PlanBatch(cameras);
    auto batch = std::make_shared<std::vector<Pending>>();
    batch->reserve(plan.size());
    for (auto it = plan.rbegin(); it != plan.rend(); ++it) {
      batch->push_back(std::move(station.queue[*it]));
      station.queue.erase(station.queue.begin() + std::ptrdiff_t(*it));
    }
    std::reverse(batch->begin(), batch->end());
    ++station.busy;
    std::vector<Job*> jobs;
    jobs.reserve(batch->size());
    for (Pending& p : *batch) {
      station.stats.total_wait_seconds += sim_->Now() - p.enqueued_at;
      jobs.push_back(&p.job);
    }
    const double service = station.batch_service(jobs);
    station.stats.busy_seconds += service;
    station.stats.served += batch->size();
    ++station.stats.batches;
    sim_->ScheduleIn(service, [this, station_id, batch]() {
      Station& s = stations_[std::size_t(station_id)];
      --s.busy;
      for (Pending& p : *batch) ++p.hop;
      // Free the server first, then route the batch's jobs onward.
      TryStartBatch(station_id);
      for (Pending& p : *batch) ArriveAt(std::move(p));
    });
  }
}

void QueueNetwork::TryStart(int station_id) {
  Station& station = stations_[std::size_t(station_id)];
  while (station.busy < station.servers && !station.queue.empty()) {
    Pending pending = std::move(station.queue.front());
    station.queue.erase(station.queue.begin());
    ++station.busy;
    station.stats.total_wait_seconds += sim_->Now() - pending.enqueued_at;
    const double service = station.service(pending.job);
    station.stats.busy_seconds += service;
    ++station.stats.served;
    sim_->ScheduleIn(service, [this, station_id,
                               pending = std::move(pending)]() mutable {
      Station& s = stations_[std::size_t(station_id)];
      --s.busy;
      ++pending.hop;
      // Free the server first, then route the job onward.
      TryStart(station_id);
      ArriveAt(std::move(pending));
    });
  }
}

void QueueNetwork::FinishJob(Pending pending) {
  pending.job.completed_at = sim_->Now();
  ++completed_;
  makespan_ = std::max(makespan_, pending.job.completed_at);
  latency_sum_ += pending.job.completed_at - pending.job.injected_at;
}

void QueueNetwork::Run() { sim_->Run(); }

}  // namespace sieve::sim
