// Queueing-network model on top of the DES core.
//
// Stations are FCFS multi-server queues with per-job service times; jobs
// carry a route (an ordered list of stations). This models the 3-tier
// pipeline exactly: e.g. for the "I-frame edge + cloud NN" placement a job
// (one frame) routes through [edge seek] -> [edge decode+resize] ->
// [WAN link] -> [cloud NN], where the link is a 1-server station whose
// service time is the serialization delay.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fleet/scheduler.h"
#include "sim/simulator.h"

namespace sieve::sim {

struct Job {
  std::uint64_t id = 0;
  std::size_t bytes = 0;      ///< current payload size (stations may change it)
  std::uint32_t kind = 0;     ///< caller-defined tag (frame type, video id...)
  double injected_at = 0.0;
  double completed_at = 0.0;
};

/// Per-station service model: returns service seconds for a job and may
/// mutate it (e.g. decode shrinks bytes to a resized still).
using ServiceFn = std::function<double(Job&)>;

/// Batch-station service model: service seconds for one batched pass over
/// the given jobs (e.g. fixed weight-streaming cost + per-sample cost).
using BatchServiceFn = std::function<double(const std::vector<Job*>&)>;

struct StationStats {
  std::string name;
  std::uint64_t served = 0;
  double busy_seconds = 0.0;      ///< total service time delivered
  double total_wait_seconds = 0.0;///< queueing delay (excludes service)
  std::size_t peak_queue = 0;
  std::uint64_t batches = 0;      ///< batched passes (batch stations only)

  double utilization(double makespan, int servers) const noexcept {
    return makespan > 0 ? busy_seconds / (makespan * servers) : 0.0;
  }
  /// Mean batch occupancy of a batch station (served jobs per pass).
  double occupancy_avg() const noexcept {
    return batches > 0 ? double(served) / double(batches) : 0.0;
  }
};

class QueueNetwork {
 public:
  explicit QueueNetwork(Simulator* sim) : sim_(sim) {}

  /// Returns the station id.
  int AddStation(std::string name, int servers, ServiceFn service);

  /// A batching FCFS station: jobs accumulate until the FleetScheduler
  /// policy flushes them (batch_max samples, or the oldest job hits the
  /// deadline), then one batched pass serves the whole batch on a free
  /// server. Job::kind is the fairness key (camera id). This is the DES
  /// twin of fleet::InferenceBatcher — the same policy object drives both,
  /// so a candidate batch/deadline/fairness setting is validated at
  /// 10k-camera scale in virtual time before the live runtime hosts it.
  int AddBatchStation(std::string name, int servers,
                      fleet::FleetSchedulerPolicy policy,
                      BatchServiceFn service);

  /// Inject a job at `arrival` that visits `route` stations in order.
  void Inject(Job job, std::vector<int> route, double arrival);

  /// Run the simulation to completion.
  void Run();

  const StationStats& stats(int station) const { return stations_.at(std::size_t(station)).stats; }
  int servers(int station) const { return stations_.at(std::size_t(station)).servers; }
  std::size_t station_count() const noexcept { return stations_.size(); }

  std::uint64_t jobs_completed() const noexcept { return completed_; }
  /// Completion time of the last job (the makespan driving throughput).
  double makespan() const noexcept { return makespan_; }
  /// Mean end-to-end latency (injection -> final completion) over all jobs.
  double mean_latency() const noexcept {
    return completed_ ? latency_sum_ / double(completed_) : 0.0;
  }

 private:
  struct Pending {
    Job job;
    std::vector<int> route;
    std::size_t hop = 0;
    double enqueued_at = 0.0;
  };
  struct Station {
    std::string name;
    int servers = 1;
    int busy = 0;
    ServiceFn service;
    std::vector<Pending> queue;  // FIFO
    StationStats stats;
    // Batch-station extras (batch == true).
    bool batch = false;
    fleet::FleetScheduler scheduler;
    BatchServiceFn batch_service;
  };

  void ArriveAt(Pending pending);
  void TryStart(int station_id);
  void TryStartBatch(int station_id);
  void FinishJob(Pending pending);

  Simulator* sim_;
  std::vector<Station> stations_;
  std::uint64_t completed_ = 0;
  double makespan_ = 0.0;
  double latency_sum_ = 0.0;
};

}  // namespace sieve::sim
