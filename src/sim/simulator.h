// Discrete-event simulation core: a virtual clock and an event queue.
//
// The end-to-end experiments replay 2.16 million frames through the 3-tier
// pipeline; running them in wall-clock time at 30 Mbps would take hours, so
// Figure 4/5-scale runs execute in virtual time with service times
// calibrated from the real implementations (core/calibration.h). This file
// is the generic DES substrate; queue_network.h builds the pipeline model
// on top.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace sieve::sim {

using EventFn = std::function<void()>;

class Simulator {
 public:
  /// Current virtual time in seconds.
  double Now() const noexcept { return now_; }

  /// Schedule `fn` at absolute virtual time `at` (>= Now()).
  void ScheduleAt(double at, EventFn fn);
  /// Schedule `fn` after a delay.
  void ScheduleIn(double delay, EventFn fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Run until the event queue empties (or until `until`, if positive).
  void Run(double until = -1.0);

  std::uint64_t events_processed() const noexcept { return processed_; }

 private:
  struct Event {
    double at;
    std::uint64_t seq;  ///< FIFO tie-break for simultaneous events
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  double now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
};

}  // namespace sieve::sim
