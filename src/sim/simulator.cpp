#include "sim/simulator.h"

#include <cassert>

namespace sieve::sim {

void Simulator::ScheduleAt(double at, EventFn fn) {
  assert(at >= now_ && "cannot schedule in the past");
  queue_.push(Event{at < now_ ? now_ : at, seq_++, std::move(fn)});
}

void Simulator::Run(double until) {
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().at > until) {
      now_ = until;  // future events stay queued for a later Run()
      return;
    }
    // priority_queue::top returns const&; the event must be moved out before
    // pop. Move via const_cast is safe here: top is popped immediately.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    ++processed_;
    event.fn();
  }
}

}  // namespace sieve::sim
