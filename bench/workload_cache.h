// Shared workload construction for the end-to-end benches (Fig. 4 and 5).
//
// Building a workload renders + tunes + encodes a probe slice of each
// dataset, which takes a couple of minutes for all five; the result is
// cached in ./bench_workloads.cache so the second bench binary reuses it.
#pragma once

#include <string>
#include <vector>

#include "core/placements.h"

namespace sieve::bench {

/// Load the five Table-I workloads from cache or build + cache them.
/// `target_frames_per_video` scales every feed to the paper's 4h default
/// when 0.
std::vector<core::VideoWorkload> LoadOrBuildWorkloads(
    const std::string& cache_path = "bench_workloads.cache");

/// Serialize / parse (plain text, one workload per line).
std::string SerializeWorkloads(const std::vector<core::VideoWorkload>& ws);
std::vector<core::VideoWorkload> ParseWorkloads(const std::string& text);

}  // namespace sieve::bench
