// Table III: event-detection speed (frames/second) for SiEVE (I-frame
// seeking in compressed streams) vs MSE and SIFT (decode every frame +
// image similarity) at each dataset's NATIVE resolution.
//
// Paper values (shape targets): Jackson 19600/157/115, Coral 7200/62/38,
// Venice 2300/22/16 fps — i.e. SiEVE is 100-170x faster, because it never
// decodes P-frames; the baselines pay full decode (the paper: 8 ms/frame at
// 1080p) plus the similarity computation per frame.
#include <cstdio>

#include "codec/decoder.h"

#include "common/bytes.h"
#include "codec/encoder.h"
#include "common/stopwatch.h"
#include "core/seeker.h"
#include "media/metrics.h"
#include "synth/datasets.h"
#include "vision/sift.h"

namespace {

using namespace sieve;

struct SpeedRow {
  double sieve_fps;
  double sieve_disk_fps;  ///< seek via per-header fread+fseek on a file
  double mse_fps;
  double sift_fps;
  double seek_ms_per_frame;
  double decode_ms_per_frame;
};

/// File-backed seek: hop frame headers with fread+fseek, payloads untouched.
/// This is the cold-storage path closest to the paper's measurement (their
/// 0.43 ms/frame includes container parsing of on-disk video).
std::size_t SeekIFramesOnDisk(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (!f) return 0;
  std::uint8_t header[codec::ContainerHeader::kSerializedSize];
  if (std::fread(header, 1, sizeof header, f) != sizeof header) {
    std::fclose(f);
    return 0;
  }
  std::size_t iframes = 0;
  std::uint8_t frame_header[codec::FrameRecord::kHeaderSize];
  while (std::fread(frame_header, 1, sizeof frame_header, f) ==
         sizeof frame_header) {
    if (frame_header[0] == std::uint8_t(codec::FrameType::kIntra)) ++iframes;
    std::uint32_t size = 0;
    for (int i = 0; i < 4; ++i) size |= std::uint32_t(frame_header[1 + i]) << (8 * i);
    if (std::fseek(f, long(size), SEEK_CUR) != 0) break;
  }
  std::fclose(f);
  return iframes;
}

SpeedRow RunDataset(synth::DatasetId id, std::size_t frames,
                    std::size_t sift_frames) {
  const auto& spec = synth::GetDatasetSpec(id);
  std::fprintf(stderr, "[table3] %s at native %dx%d (%zu frames)...\n",
               spec.name.c_str(), spec.width, spec.height, frames);
  synth::SceneConfig cfg = synth::MakeDatasetConfig(id, frames, 3);
  cfg.mean_gap_seconds = 1.0;  // keep the probe busy so decode cost is honest
  cfg.min_gap_seconds = 0.5;
  cfg.mean_dwell_seconds = 1.5;
  cfg.min_dwell_seconds = 0.8;
  const auto scene = synth::GenerateScene(cfg);

  codec::EncoderParams params = codec::EncoderParams::Semantic(60, 250);
  auto encoded = codec::VideoEncoder(params).Encode(scene.video);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 encoded.status().ToString().c_str());
    return {};
  }

  SpeedRow row{};
  Stopwatch watch;

  // --- SiEVE: seek I-frames in the compressed stream (no decode) ----------
  {
    const int laps = 400;
    watch.Start();
    std::size_t found = 0;
    for (int i = 0; i < laps; ++i) {
      auto report = core::SeekIFrames(encoded->bytes);
      found += report.ok() ? report->iframes.size() : 0;
    }
    const double seconds = watch.ElapsedSeconds() / laps;
    row.seek_ms_per_frame = seconds * 1e3 / double(frames);
    row.sieve_fps = double(frames) / seconds;
    if (found == 0) std::fprintf(stderr, "no iframes?!\n");
  }

  // --- SiEVE from disk: header hops with fread+fseek -----------------------
  {
    const std::string path = "/tmp/sieve_table3_probe.svb";
    (void)WriteFileBytes(path, encoded->bytes);
    const int laps = 50;
    watch.Start();
    std::size_t found = 0;
    for (int i = 0; i < laps; ++i) found += SeekIFramesOnDisk(path.c_str());
    row.sieve_disk_fps = double(frames) * laps / watch.ElapsedSeconds();
    std::remove(path.c_str());
    if (found == 0) std::fprintf(stderr, "disk seek found nothing\n");
  }

  // --- MSE: decode every frame + frame difference --------------------------
  {
    auto decoder = codec::VideoDecoder::Open(encoded->bytes);
    watch.Start();
    media::Frame prev;
    double sink = 0;
    std::size_t n = 0;
    while (!decoder->AtEnd()) {
      auto frame = decoder->DecodeNext();
      if (!frame.ok()) break;
      if (n > 0) sink += media::FrameMse(prev, *frame);
      prev = std::move(*frame);
      ++n;
    }
    const double seconds = watch.ElapsedSeconds();
    row.mse_fps = double(n) / seconds + sink * 0.0;
    row.decode_ms_per_frame = seconds * 1e3 / double(n);
  }

  // --- SIFT: decode + extract + match (on a prefix; per-frame cost scales) -
  {
    auto decoder = codec::VideoDecoder::Open(encoded->bytes);
    watch.Start();
    std::vector<vision::SiftKeypoint> prev;
    std::size_t n = 0;
    while (!decoder->AtEnd() && n < sift_frames) {
      auto frame = decoder->DecodeNext();
      if (!frame.ok()) break;
      auto cur = vision::ExtractSift(frame->y());
      if (n > 0) vision::MatchSift(prev, cur);
      prev = std::move(cur);
      ++n;
    }
    row.sift_fps = double(n) / watch.ElapsedSeconds();
  }
  return row;
}

void Print(const char* name, const SpeedRow& row) {
  std::printf("%-16s %11.0f %11.0f %8.1f %8.1f   %10.2f   %7.0fx %7.0fx\n",
              name, row.sieve_fps, row.sieve_disk_fps, row.mse_fps,
              row.sift_fps, row.decode_ms_per_frame,
              row.sieve_disk_fps / row.mse_fps,
              row.sieve_disk_fps / row.sift_fps);
}

}  // namespace

int main() {
  std::printf("SiEVE reproduction — Table III: event-detection speed (fps) at "
              "native resolutions\n");
  std::printf("%-16s %11s %11s %8s %8s   %10s   %7s %7s\n", "dataset",
              "SiEVE(mem)", "SiEVE(disk)", "MSE", "SIFT", "dec ms/f", "vs MSE",
              "vs SIFT");
  Print("jackson_square",
        RunDataset(synth::DatasetId::kJacksonSquare, 360, 36));
  Print("coral_reef", RunDataset(synth::DatasetId::kCoralReef, 150, 12));
  Print("venice", RunDataset(synth::DatasetId::kVenice, 72, 6));
  std::printf("(paper: 19600/157/115, 7200/62/38, 2300/22/16 fps; seek 0.43 "
              "ms/f and decode 8 ms/f at 1080p)\n");
  return 0;
}
