// Figure 4: end-to-end throughput (processed frames per second) of the five
// placements over growing workloads: {1 video / 4h, 3 videos / 12h,
// 5 videos / 20h} — 2.16M frames total at full scale.
//
// The workloads are measured from real renders + encodes of probe slices
// (see bench/workload_cache.*); per-operation service times are calibrated
// from the real implementations on this machine (core/calibration.h); the
// pipeline is replayed in a discrete-event queueing network with the
// paper's 30 Mbps WAN, a 2-worker edge, and a 4-worker cloud.
//
// Shape targets (Section V-B): the three semantic placements far outrun
// uniform sampling and MSE (which must decode every frame), and the 3-tier
// "I-frame edge + cloud NN" beats both 2-tier variants.
#include <cstdio>
#include <span>

#include "core/calibration.h"
#include "core/placements.h"
#include "workload_cache.h"

int main() {
  using namespace sieve;

  std::printf("SiEVE reproduction — Figure 4: end-to-end throughput (fps)\n");
  auto costs_or = core::MeasureCostModel();
  if (!costs_or.ok()) {
    std::fprintf(stderr, "calibration failed: %s\n",
                 costs_or.status().ToString().c_str());
    return 1;
  }
  const core::CostModel costs = costs_or->NormalizedToProductionCodec();
  std::fprintf(stderr, "[calibration] %s\n", costs.ToString().c_str());

  const auto workloads = bench::LoadOrBuildWorkloads();
  if (workloads.size() != std::size_t(synth::kNumDatasets)) return 1;

  std::uint64_t total_frames = 0;
  for (const auto& w : workloads) total_frames += w.total_frames;
  std::printf("workloads: 5 videos, %.2fM frames total (paper: 2.16M)\n",
              double(total_frames) / 1e6);

  const struct {
    const char* label;
    std::size_t count;
  } groups[] = {{"1 video (4h)", 1}, {"3 videos (12h)", 3}, {"5 videos (20h)", 5}};

  std::printf("%-34s %16s %16s %16s\n", "placement", groups[0].label,
              groups[1].label, groups[2].label);
  for (int p = 0; p < core::kNumPlacements; ++p) {
    std::printf("%-34s", core::PlacementName(core::Placement(p)));
    for (const auto& group : groups) {
      const std::span<const core::VideoWorkload> slice(workloads.data(),
                                                       group.count);
      const auto report =
          core::SimulateThroughput(core::Placement(p), slice, costs);
      std::printf(" %13.0f fps", report.fps);
    }
    std::printf("\n");
  }

  // Station-level detail for the full 5-video run of the 3-tier placement.
  const auto detail = core::SimulateThroughput(core::Placement::kIFrameEdgeCloudNN,
                                               workloads, costs);
  std::printf("\n3-tier detail (5 videos): makespan=%.0fs jobs=%llu\n",
              detail.makespan_seconds,
              (unsigned long long)detail.jobs);
  for (const auto& s : detail.stations) {
    std::printf("  station %-12s served=%-8llu busy=%.0fs peak_queue=%zu\n",
                s.name.c_str(), (unsigned long long)s.served, s.busy_seconds,
                s.peak_queue);
  }
  return 0;
}
