// Figure 5: total data transferred camera->edge and edge->cloud (GB) for
// the five placements over the full 5-video / 20h workload.
//
// Byte counts come from real encodes of probe slices extrapolated to paper
// scale. Shape targets (Section V-B): the semantically encoded stream is
// ~12% larger camera->edge than the default encoding; shipping resized
// I-frame stills cuts edge->cloud by ~7x vs shipping the video; and MSE
// transfers ~2.5x more than the I-frame approach.
#include <cstdio>

#include "core/placements.h"
#include "workload_cache.h"

int main() {
  using namespace sieve;

  std::printf("SiEVE reproduction — Figure 5: data transfer per hop (GB)\n");
  const auto workloads = bench::LoadOrBuildWorkloads();
  if (workloads.size() != std::size_t(synth::kNumDatasets)) return 1;

  std::printf("%-34s %16s %16s\n", "placement", "camera->edge GB",
              "edge->cloud GB");
  double semantic_c2e = 0, default_c2e = 0, iframe_e2c = 0, stream_e2c = 0,
         mse_e2c = 0;
  for (int p = 0; p < core::kNumPlacements; ++p) {
    const auto r = core::ComputeTransfer(core::Placement(p), workloads);
    std::printf("%-34s %16.2f %16.3f\n", core::PlacementName(core::Placement(p)),
                double(r.camera_to_edge_bytes) / 1e9,
                double(r.edge_to_cloud_bytes) / 1e9);
    switch (core::Placement(p)) {
      case core::Placement::kIFrameEdgeCloudNN:
        semantic_c2e = double(r.camera_to_edge_bytes);
        iframe_e2c = double(r.edge_to_cloud_bytes);
        break;
      case core::Placement::kIFrameCloudCloudNN:
        stream_e2c = double(r.edge_to_cloud_bytes);
        break;
      case core::Placement::kUniformEdgeCloudNN:
        default_c2e = double(r.camera_to_edge_bytes);
        break;
      case core::Placement::kMseEdgeCloudNN:
        mse_e2c = double(r.edge_to_cloud_bytes);
        break;
      default:
        break;
    }
  }

  std::printf("\nshape checks (paper targets in parentheses):\n");
  std::printf("  semantic stream overhead camera->edge: %+.1f%%  (~+12%%)\n",
              (semantic_c2e / default_c2e - 1.0) * 100.0);
  std::printf("  video->stills reduction edge->cloud:   %.1fx   (~7x, "
              "12.26GB -> 1.688GB)\n",
              stream_e2c / iframe_e2c);
  std::printf("  MSE vs I-frame stills edge->cloud:     %.2fx   (~2.5x)\n",
              mse_e2c / iframe_e2c);
  return 0;
}
