// Hot-path performance harness: encode throughput, motion-search candidate
// throughput, GEMM / CNN-forward arithmetic throughput, multi-camera
// fan-in, and NN placement (all-edge / all-cloud / auto-split), each
// measured against its serial / unpruned / naive reference IN THE SAME RUN
// so every speedup quoted is apples-to-apples on this machine. Emits a JSON
// report (default ./BENCH_hotpaths.json, override with argv[1]) that tracks
// the perf trajectory across PRs.
//
// Usage: perf_hotpaths [out.json] [parallel_threads] [scenarios] [trace.json]
//   scenarios: comma-separated subset of
//     encode,motion,gemm,conv,multi_session,nn_placement,live_query,
//     dct_sad_kernels,wan_chaos,fleet_scale,int8_inference,pipelined_encode,
//     trace_overhead,durability
//   (default: all). Skipped scenarios report zeros in the JSON.
//   trace.json: when given, the trace_overhead scenario writes its traced
//   leg's Chrome trace there (load in chrome://tracing).
//
// Exits nonzero if any scenario failed to run (the JSON still gets written,
// with zeros in the failed sections, so the caller decides what to keep).
// Everything is seeded; two runs on the same machine produce the same work.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include <filesystem>

#include "codec/container.h"
#include "codec/encoder.h"
#include "codec/motion.h"
#include "codec/transform.h"
#include "common/rng.h"
#include "common/simd/kernels.h"
#include "common/stopwatch.h"
#include "media/metrics.h"
#include "nn/classifier.h"
#include "nn/network.h"
#include "nn/partition.h"
#include "nn/tensor.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "query/service.h"
#include "runtime/placement.h"
#include "runtime/runtime.h"
#include "store/journal.h"
#include "store/recovery.h"
#include "synth/scene.h"

namespace {

using namespace sieve;

constexpr std::uint64_t kSeed = 20260729;

constexpr const char* kKnownScenarios[] = {
    "encode", "motion", "gemm",         "conv",      "multi_session",
    "nn_placement", "live_query", "dct_sad_kernels", "wan_chaos",
    "fleet_scale", "int8_inference", "pipelined_encode", "trace_overhead",
    "durability"};

/// Set when a scenario could not run (encode failure, session failure...);
/// main exits nonzero so tools/run_bench.sh never commits a partial report.
std::atomic<bool> g_scenario_failed{false};

void ReportScenarioFailure(const char* scenario, const char* what) {
  std::fprintf(stderr, "[%s] %s\n", scenario, what);
  g_scenario_failed.store(true, std::memory_order_relaxed);
}

/// argv[3] scenario filter: empty = everything enabled.
std::string g_scenarios;

std::vector<std::string> SplitCommas(const std::string& list) {
  std::vector<std::string> tokens;
  std::size_t pos = 0;
  while (pos <= list.size()) {
    const std::size_t comma = list.find(',', pos);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > pos) tokens.push_back(list.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return tokens;
}

/// All filter tokens must name real scenarios — a typo silently disabling
/// everything would overwrite the tracked JSON with zeros.
bool ValidateScenarios(const std::string& list) {
  for (const std::string& token : SplitCommas(list)) {
    bool known = false;
    for (const char* name : kKnownScenarios) known = known || token == name;
    if (!known) {
      std::fprintf(stderr, "unknown scenario '%s'; known:", token.c_str());
      for (const char* name : kKnownScenarios) std::fprintf(stderr, " %s", name);
      std::fprintf(stderr, "\n");
      return false;
    }
  }
  return true;
}

bool Enabled(const char* name) {
  if (g_scenarios.empty()) return true;
  for (const std::string& token : SplitCommas(g_scenarios)) {
    if (token == name) return true;
  }
  return false;
}

double Ratio(double a, double b) { return b > 0 ? a / b : 0.0; }

// ---------------------------------------------------------------- encode --

struct EncodeResult {
  double reference_fps = 0;   ///< serial, unpruned search (seed path)
  double serial_fps = 0;      ///< pruned search, 1 thread
  double parallel_fps = 0;    ///< pruned search, all hardware threads
  bool bit_identical = false; ///< all three bitstreams byte-equal
  std::size_t frames = 0;
  std::size_t bytes = 0;
};

EncodeResult BenchEncode(int parallel_threads) {
  // A busy feed: camera jitter defeats zero-motion SKIP and concurrent
  // objects keep residual coding warm, so every macroblock exercises the
  // search + transform hot path (the workload the paper's throughput
  // figures care about, and the one where encoding speed actually matters).
  synth::SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  cfg.num_frames = 96;
  cfg.seed = kSeed;
  cfg.object_scale = 0.28;
  cfg.allow_concurrent = true;
  cfg.mean_gap_seconds = 1.0;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 2.0;
  cfg.min_dwell_seconds = 0.8;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 2;
  const auto scene = synth::GenerateScene(cfg);
  std::fprintf(stderr, "[encode] %dx%d, %zu frames\n", cfg.width, cfg.height,
               scene.video.frames.size());

  auto run = [&](bool reference, int threads) {
    codec::EncoderParams params = codec::EncoderParams::DefaultEncoding();
    params.reference_inter = reference;
    params.threads = threads;
    Stopwatch watch;
    auto encoded = codec::VideoEncoder(params).Encode(scene.video);
    const double seconds = watch.ElapsedSeconds();
    return std::pair(std::move(encoded), seconds);
  };

  EncodeResult out;
  out.frames = scene.video.frames.size();

  auto [ref, ref_s] = run(true, 1);
  auto [serial, serial_s] = run(false, 1);
  auto [parallel, parallel_s] = run(false, parallel_threads);
  if (!ref.ok() || !serial.ok() || !parallel.ok()) {
    ReportScenarioFailure("encode", "encode failed");
    return out;
  }
  out.reference_fps = double(out.frames) / ref_s;
  out.serial_fps = double(out.frames) / serial_s;
  out.parallel_fps = double(out.frames) / parallel_s;
  out.bit_identical =
      ref->bytes == serial->bytes && ref->bytes == parallel->bytes;
  out.bytes = ref->bytes.size();
  return out;
}

// --------------------------------------------------------- motion search --

struct MotionResultRow {
  double reference_cand_per_s = 0;
  double pruned_cand_per_s = 0;
  bool identical = false;
};

MotionResultRow BenchMotion() {
  // Two smooth textured planes related by per-block shifts: realistic SAD
  // surfaces for the pruner (white noise would prune nearly everything).
  const int w = 320, h = 240, range = 8;
  media::Plane ref_plane(w, h), cur_plane(w, h);
  Rng rng(kSeed);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int v = int(96 + 64 * ((x / 7 + y / 5) % 3)) + rng.UniformInt(-9, 9);
      ref_plane.at(x, y) = std::uint8_t(v < 0 ? 0 : (v > 255 ? 255 : v));
    }
  }
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      cur_plane.at(x, y) = ref_plane.at_clamped(x - 3, y + 2);
    }
  }

  const int mb = 16;
  const std::uint64_t cand_per_block =
      std::uint64_t(2 * range + 1) * std::uint64_t(2 * range + 1);
  std::uint64_t blocks = 0;
  for (int by = 0; by + mb <= h; by += mb) {
    for (int bx = 0; bx + mb <= w; bx += mb) ++blocks;
  }

  auto sweep = [&](auto search_fn) {
    std::uint64_t checksum = 0;
    for (int by = 0; by + mb <= h; by += mb) {
      for (int bx = 0; bx + mb <= w; bx += mb) {
        const codec::MotionResult r =
            search_fn(cur_plane, ref_plane, bx, by, mb, mb, range,
                      codec::MotionVector{0, 0}, 8u);
        checksum = checksum * 1315423911u + r.sad +
                   std::uint64_t(std::uint32_t(r.mv.dx * 131 + r.mv.dy));
      }
    }
    return checksum;
  };

  MotionResultRow row;
  const int laps = 6;
  Stopwatch watch;
  std::uint64_t ref_sum = 0;
  for (int i = 0; i < laps; ++i) ref_sum = sweep(codec::FullSearchReference);
  const double ref_s = watch.ElapsedSeconds();
  watch.Start();
  std::uint64_t pruned_sum = 0;
  for (int i = 0; i < laps; ++i) pruned_sum = sweep(codec::FullSearch);
  const double pruned_s = watch.ElapsedSeconds();

  const double total_cand = double(cand_per_block) * double(blocks) * laps;
  row.reference_cand_per_s = total_cand / ref_s;
  row.pruned_cand_per_s = total_cand / pruned_s;
  row.identical = ref_sum == pruned_sum;
  return row;
}

// -------------------------------------------------------------------- nn --

struct GemmRow {
  double naive_gflops = 0;
  double blocked_gflops = 0;
};

GemmRow BenchGemm() {
  // An im2col-shaped problem: m = output pixels, k = patch, n = channels.
  const int m = 1024, k = 288, n = 64;
  std::vector<float> a(std::size_t(m) * k), b(std::size_t(k) * n),
      c(std::size_t(m) * n);
  Rng rng(kSeed);
  for (auto& v : a) v = float(rng.Uniform(-1.0, 1.0));
  for (auto& v : b) v = float(rng.Uniform(-1.0, 1.0));

  const double flops_per_call = 2.0 * double(m) * double(k) * double(n);
  const int laps = 24;
  GemmRow row;
  Stopwatch watch;
  for (int i = 0; i < laps; ++i) nn::GemmNaive(a.data(), b.data(), c.data(), m, k, n);
  row.naive_gflops = flops_per_call * laps / watch.ElapsedSeconds() / 1e9;
  watch.Start();
  for (int i = 0; i < laps; ++i) nn::Gemm(a.data(), b.data(), c.data(), m, k, n);
  row.blocked_gflops = flops_per_call * laps / watch.ElapsedSeconds() / 1e9;
  return row;
}

struct ConvRow {
  double forward_ms = 0;
  double gflops = 0;  ///< MAC-derived arithmetic throughput of a full forward
};

ConvRow BenchConvForward() {
  const nn::Network net = nn::MakeBackbone(96, 64, kSeed);
  std::uint64_t macs = 0;
  for (const auto& layer : net.Profile()) macs += layer.macs;

  nn::Tensor input(net.input_shape());
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.values()[i] = float((i % 255) / 255.0);
  }
  // Warm-up builds the scratch buffers.
  (void)net.Forward(input);
  const int laps = 10;
  Stopwatch watch;
  for (int i = 0; i < laps; ++i) (void)net.Forward(input);
  const double seconds = watch.ElapsedSeconds();
  ConvRow row;
  row.forward_ms = seconds * 1e3 / laps;
  row.gflops = 2.0 * double(macs) * laps / seconds / 1e9;
  return row;
}

// --------------------------------------------------------- kernel micros --

/// One vector table measured against the scalar reference: raw rates plus
/// per-kernel speedups and the bit-equality verdict on the shared data.
struct KernelArchColumn {
  const char* arch = "";
  double fdct_mblocks_s = 0, fdct_speedup = 0;
  double idct_mblocks_s = 0, idct_speedup = 0;
  double sad_mpix_s = 0, sad_speedup = 0;
  double quant_mblocks_s = 0, quant_speedup = 0;
  bool identical = false;  ///< this arch's outputs bit-equal to scalar
};

struct KernelBenchRow {
  const char* active_arch = "";
  bool simd_available = false;   ///< active table != scalar
  double fdct_scalar_mblocks_s = 0, fdct_simd_mblocks_s = 0, fdct_speedup = 0;
  double idct_scalar_mblocks_s = 0, idct_simd_mblocks_s = 0, idct_speedup = 0;
  double sad_scalar_mpix_s = 0, sad_simd_mpix_s = 0, sad_speedup = 0;
  double quant_scalar_mblocks_s = 0, quant_simd_mblocks_s = 0,
         quant_speedup = 0;
  bool identical = false;  ///< SIMD outputs bit-equal to scalar on this data
  /// Every supported non-scalar table, each A/B'd against the same scalar
  /// baseline on the same data (sse2 AND avx2 on AVX2 hardware), so the
  /// trajectory shows whether a wider table actually pays for itself —
  /// tools/check_bench.py gates avx2-not-slower-than-sse2 on these columns.
  std::vector<KernelArchColumn> arches;
};

/// A/B microbench of the dispatch layer itself: the scalar table against
/// EVERY supported vector table on the same random blocks, verifying
/// bit-equality of every output while timing. This is the acceptance number
/// for the SIMD kernels (>= 2.5x ForwardDct, >= 2x SAD on SIMD-capable
/// hardware); the legacy simd columns report the best (widest) table.
KernelBenchRow BenchDctSadKernels() {
  const simd::KernelTable& scalar = simd::KernelsFor(simd::KernelArch::kScalar);

  KernelBenchRow row;
  row.active_arch = simd::KernelArchName(simd::KernelArch::kScalar);
  row.identical = true;

  constexpr int kBlocks = 256;
  constexpr int kLaps = 2000;
  Rng rng(kSeed + 99);
  std::vector<std::int16_t> pixels(std::size_t(kBlocks) * simd::kBlockLen);
  for (auto& v : pixels) v = std::int16_t(rng.UniformInt(-255, 255));
  const codec::QuantTable q = codec::MakeLumaQuant(26);

  std::vector<float> freq_a(pixels.size()), freq_b(pixels.size());
  std::vector<float> dequant(pixels.size());
  std::vector<std::int32_t> coeff_a(pixels.size()), coeff_b(pixels.size());
  std::vector<std::int16_t> rec_a(pixels.size()), rec_b(pixels.size());

  const double total_blocks = double(kBlocks) * kLaps;
  auto time_blocks = [&](auto&& fn) {
    Stopwatch watch;
    for (int lap = 0; lap < kLaps; ++lap) {
      for (int blk = 0; blk < kBlocks; ++blk) fn(blk);
    }
    return total_blocks / watch.ElapsedSeconds() / 1e6;  // Mblocks/s
  };

  // SAD inputs: 16x16 macroblocks over two textured planes (the
  // motion-search shape), measured in pixels/s.
  const int w = 320, h = 240;
  media::Plane pa(w, h), pb(w, h);
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      pa.at(x, y) = std::uint8_t(rng.UniformInt(0, 255));
    }
  }
  // pb = pa shifted by 2px + small noise (fill pa fully first): the
  // motion-search-shaped input, with realistic small differences.
  for (int y = 0; y < h; ++y) {
    for (int x = 0; x < w; ++x) {
      const int v = int(pa.at_clamped(x + 2, y)) + rng.UniformInt(0, 8);
      pb.at(x, y) = std::uint8_t(v > 255 ? 255 : v);
    }
  }
  const int sad_laps = 400;
  auto time_sad = [&](const simd::KernelTable& table, std::uint64_t* checksum) {
    std::uint64_t sum = 0;
    double pixels_scanned = 0;
    Stopwatch watch;
    for (int lap = 0; lap < sad_laps; ++lap) {
      for (int by = 0; by + 16 <= h; by += 16) {
        for (int bx = 0; bx + 16 <= w; bx += 16) {
          sum += table.sad16xh(pa.row(by) + bx, w, pb.row(by) + bx, w, 16);
          pixels_scanned += 256;
        }
      }
    }
    *checksum = sum;
    return pixels_scanned / watch.ElapsedSeconds() / 1e6;  // Mpix/s
  };

  // Scalar baseline pass: time every kernel and keep its outputs as the
  // bit-equality reference for each vector arch.
  row.fdct_scalar_mblocks_s = time_blocks([&](int blk) {
    scalar.fdct8x8(pixels.data() + blk * simd::kBlockLen,
                   freq_a.data() + blk * simd::kBlockLen);
  });
  row.quant_scalar_mblocks_s = time_blocks([&](int blk) {
    scalar.quantize8x8(freq_a.data() + blk * simd::kBlockLen, q.step.data(),
                       coeff_a.data() + blk * simd::kBlockLen);
  });
  // Inverse DCT runs over dequantized coefficients (kept in a separate
  // buffer: freq_a stays valid as every arch's quantize input).
  for (int blk = 0; blk < kBlocks; ++blk) {
    scalar.dequantize8x8(coeff_a.data() + blk * simd::kBlockLen, q.step.data(),
                         dequant.data() + blk * simd::kBlockLen);
  }
  row.idct_scalar_mblocks_s = time_blocks([&](int blk) {
    scalar.idct8x8(dequant.data() + blk * simd::kBlockLen,
                   rec_a.data() + blk * simd::kBlockLen);
  });
  std::uint64_t sum_scalar = 0;
  row.sad_scalar_mpix_s = time_sad(scalar, &sum_scalar);

  // Measure every supported non-scalar table even under SIEVE_FORCE_SCALAR
  // or SIEVE_KERNEL_ARCH: the env pins production dispatch, not the A/B
  // harness. CompiledArches() lists narrow-to-wide, so the last supported
  // entry is the best table — its column also fills the legacy simd fields.
  for (simd::KernelArch arch : simd::CompiledArches()) {
    if (arch == simd::KernelArch::kScalar || !simd::ArchSupported(arch)) {
      continue;
    }
    const simd::KernelTable& vec = simd::KernelsFor(arch);
    KernelArchColumn col;
    col.arch = simd::KernelArchName(arch);
    col.identical = true;

    col.fdct_mblocks_s = time_blocks([&](int blk) {
      vec.fdct8x8(pixels.data() + blk * simd::kBlockLen,
                  freq_b.data() + blk * simd::kBlockLen);
    });
    col.fdct_speedup = Ratio(col.fdct_mblocks_s, row.fdct_scalar_mblocks_s);
    col.identical = col.identical &&
                    std::memcmp(freq_a.data(), freq_b.data(),
                                freq_a.size() * sizeof(float)) == 0;

    col.quant_mblocks_s = time_blocks([&](int blk) {
      vec.quantize8x8(freq_a.data() + blk * simd::kBlockLen, q.step.data(),
                      coeff_b.data() + blk * simd::kBlockLen);
    });
    col.quant_speedup = Ratio(col.quant_mblocks_s, row.quant_scalar_mblocks_s);
    col.identical = col.identical &&
                    std::memcmp(coeff_a.data(), coeff_b.data(),
                                coeff_a.size() * sizeof(std::int32_t)) == 0;

    col.idct_mblocks_s = time_blocks([&](int blk) {
      vec.idct8x8(dequant.data() + blk * simd::kBlockLen,
                  rec_b.data() + blk * simd::kBlockLen);
    });
    col.idct_speedup = Ratio(col.idct_mblocks_s, row.idct_scalar_mblocks_s);
    col.identical = col.identical &&
                    std::memcmp(rec_a.data(), rec_b.data(),
                                rec_a.size() * sizeof(std::int16_t)) == 0;

    std::uint64_t sum_simd = 0;
    col.sad_mpix_s = time_sad(vec, &sum_simd);
    col.sad_speedup = Ratio(col.sad_mpix_s, row.sad_scalar_mpix_s);
    col.identical = col.identical && sum_scalar == sum_simd;

    row.identical = row.identical && col.identical;
    row.active_arch = col.arch;
    row.simd_available = true;
    row.fdct_simd_mblocks_s = col.fdct_mblocks_s;
    row.fdct_speedup = col.fdct_speedup;
    row.idct_simd_mblocks_s = col.idct_mblocks_s;
    row.idct_speedup = col.idct_speedup;
    row.sad_simd_mpix_s = col.sad_mpix_s;
    row.sad_speedup = col.sad_speedup;
    row.quant_simd_mblocks_s = col.quant_mblocks_s;
    row.quant_speedup = col.quant_speedup;
    row.arches.push_back(col);
  }
  if (row.arches.empty()) {
    // Scalar-only hardware: the legacy simd columns degenerate to the
    // scalar numbers (speedup 1.0), matching the old behaviour of timing
    // the scalar table against itself.
    row.fdct_simd_mblocks_s = row.fdct_scalar_mblocks_s;
    row.idct_simd_mblocks_s = row.idct_scalar_mblocks_s;
    row.sad_simd_mpix_s = row.sad_scalar_mpix_s;
    row.quant_simd_mblocks_s = row.quant_scalar_mblocks_s;
    row.fdct_speedup = row.idct_speedup = row.sad_speedup =
        row.quant_speedup = 1.0;
  }

  if (!row.identical) {
    ReportScenarioFailure("dct_sad_kernels",
                          "SIMD outputs differ from scalar reference");
  }
  return row;
}

// ----------------------------------------------------- multi-camera fleet --

struct MultiSessionResult {
  std::size_t sessions = 0;
  std::size_t frames_total = 0;
  double aggregate_fps = 0;  ///< all cameras' frames / wall seconds
  std::vector<dataflow::StageStats> stages;  ///< shared-tier stats
};

MultiSessionResult BenchMultiSession() {
  // Three concurrent camera sessions on ONE shared runtime/executor: the
  // scaling scenario the session API exists for. Tracks how fan-in and the
  // shared pool behave across PRs (aggregate fps + per-stage busy time).
  constexpr int kSessions = 3;
  constexpr int kW = 192, kH = 144;
  constexpr std::size_t kFramesPerCam = 48;

  auto make_scene = [&](int cam) {
    synth::SceneConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.num_frames = kFramesPerCam;
    cfg.seed = kSeed + std::uint64_t(cam) * 131;
    cfg.object_scale = 0.3;
    cfg.mean_gap_seconds = 0.8;
    cfg.min_gap_seconds = 0.3;
    cfg.mean_dwell_seconds = 1.2;
    cfg.min_dwell_seconds = 0.5;
    cfg.noise_sigma = 2.0;
    cfg.jitter_px = 1;
    return synth::GenerateScene(cfg);
  };
  std::vector<synth::SyntheticVideo> scenes;
  for (int cam = 0; cam < kSessions; ++cam) scenes.push_back(make_scene(cam));

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scenes[0].video.frames, scenes[0].truth, 8).ok()) {
    ReportScenarioFailure("multi_session", "classifier fit failed");
    return {};
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.nn_input_size = 32;
  runtime::Runtime rt(runtime_config, &classifier);
  std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
  for (int cam = 0; cam < kSessions; ++cam) {
    runtime::SessionConfig sc;
    sc.width = kW;
    sc.height = kH;
    sc.encoder = codec::EncoderParams::Semantic(12, 150);
    auto session = rt.OpenSession("cam-" + std::to_string(cam), sc);
    if (!session.ok()) {
      ReportScenarioFailure("multi_session", "OpenSession failed");
      return {};
    }
    sessions.push_back(std::move(*session));
  }

  Stopwatch watch;
  std::vector<std::thread> feeds;
  for (int cam = 0; cam < kSessions; ++cam) {
    feeds.emplace_back([cam, &sessions, &scenes] {
      for (const auto& frame : scenes[std::size_t(cam)].video.frames) {
        if (!sessions[std::size_t(cam)]->PushFrame(frame).ok()) return;
      }
    });
  }
  for (auto& t : feeds) t.join();
  MultiSessionResult out;
  for (auto& session : sessions) {
    out.frames_total += session->Drain().frames_pushed;
  }
  const double seconds = watch.ElapsedSeconds();
  out.sessions = kSessions;
  out.aggregate_fps = seconds > 0 ? double(out.frames_total) / seconds : 0.0;
  auto stats = rt.Shutdown();
  if (stats.ok()) out.stages = std::move(*stats);
  return out;
}

// ------------------------------------------------------------ placement --

struct PlacementRow {
  const char* mode = "";
  std::size_t split = 0;           ///< layers [0, split) ran at the edge
  std::size_t frames = 0;
  std::size_t iframes = 0;
  double wall_seconds = 0;         ///< open -> drained, end to end
  double latency_ms_per_frame = 0; ///< wall / frames
  std::uint64_t wan_bytes = 0;     ///< stills or activations that crossed
  double predicted_total_ms = 0;   ///< planner estimate at this split
};

struct NnPlacementResult {
  std::size_t layer_count = 0;
  std::vector<PlacementRow> rows;
};

NnPlacementResult BenchNnPlacement() {
  // One camera feed pushed through three runtimes that differ only in the
  // session's placement plan: all-edge, all-cloud, and planner-chosen
  // auto-split. Tracks end-to-end latency and WAN activation/still bytes —
  // the trade the paper's NN Deployment service navigates per camera.
  constexpr int kW = 192, kH = 144;
  constexpr std::size_t kFrames = 48;
  synth::SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.num_frames = kFrames;
  cfg.seed = kSeed + 7;
  cfg.object_scale = 0.3;
  cfg.mean_gap_seconds = 0.8;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 1.2;
  cfg.min_dwell_seconds = 0.5;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 1;
  const auto scene = synth::GenerateScene(cfg);

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scene.video.frames, scene.truth, 8).ok()) {
    ReportScenarioFailure("nn_placement", "classifier fit failed");
    return {};
  }

  NnPlacementResult out;
  out.layer_count = classifier.network().LayerCount();

  // Planner view of this deployment, used to report a predicted latency
  // for the *fixed* edge/cloud plans (their opens never consult the
  // planner). Shares the runtime's measurement path — same probe still,
  // same defaults — so these columns stay comparable to the auto row.
  const runtime::RuntimeConfig defaults;
  const nn::PartitionInput planner = runtime::MeasurePlannerInput(
      classifier, cp.input_size, defaults.still_qp, defaults.edge_to_cloud,
      defaults.cloud_speedup);
  const auto predicted = nn::EvaluateSplits(planner);

  const runtime::PlacementMode modes[] = {runtime::PlacementMode::kEdge,
                                          runtime::PlacementMode::kCloud,
                                          runtime::PlacementMode::kAuto};
  for (const runtime::PlacementMode mode : modes) {
    runtime::RuntimeConfig runtime_config;
    runtime_config.nn_input_size = 32;
    runtime::Runtime rt(runtime_config, &classifier);
    runtime::SessionConfig sc;
    sc.width = kW;
    sc.height = kH;
    sc.encoder = codec::EncoderParams::Semantic(12, 150);
    sc.placement = mode;
    auto session = rt.OpenSession("cam", sc);
    if (!session.ok()) {
      ReportScenarioFailure("nn_placement", "OpenSession failed");
      return out;
    }
    for (const auto& frame : scene.video.frames) {
      if (!(*session)->PushFrame(frame).ok()) break;
    }
    const runtime::SessionReport report = (*session)->Drain();
    (void)rt.Shutdown();

    PlacementRow row;
    row.mode = runtime::PlacementModeName(report.placement);
    row.split = report.nn_split;
    row.frames = report.frames_pushed;
    row.iframes = report.iframes_selected;
    row.wall_seconds = report.wall_seconds;
    row.latency_ms_per_frame =
        Ratio(report.wall_seconds * 1e3, double(report.frames_pushed));
    row.wan_bytes = report.edge_to_cloud_bytes;
    if (report.placement == runtime::PlacementMode::kAuto) {
      // The exact prediction that drove the split decision.
      row.predicted_total_ms = report.predicted_total_ms;
    } else if (report.nn_split < predicted.size()) {
      row.predicted_total_ms = predicted[report.nn_split].total_ms;
    }
    out.rows.push_back(row);
  }
  return out;
}

// ------------------------------------------------------------ live query --

struct LiveQueryResult {
  std::size_t sessions = 0;
  std::size_t frames_total = 0;
  std::size_t queries = 0;          ///< FindObject calls issued while live
  double avg_query_micros = 0;      ///< mean FindObject latency under ingest
  /// 99th-percentile FindObject latency: the number to watch. The max is
  /// kept for visibility but is dominated by one-off warmup/scheduling
  /// artifacts (a single 40 ms page-fault-shaped outlier in early runs).
  double p99_query_micros = 0;
  double max_query_micros = 0;
  std::uint64_t index_updates = 0;  ///< final index version (register+insert+seal)
  double updates_per_s = 0;         ///< index update throughput while streaming
  std::size_t subscription_events = 0;  ///< enter/exit deliveries
  std::size_t hits_final = 0;       ///< drained hits summed over all classes
};

LiveQueryResult BenchLiveQuery() {
  // Three streaming cameras with one query thread hammering the live index
  // (FindObject + WhereIs over every class, continuously): measures read
  // latency under ingest and the index's update throughput — the query
  // engine's two numbers to watch across PRs.
  constexpr int kSessions = 3;
  constexpr int kW = 192, kH = 144;
  constexpr std::size_t kFramesPerCam = 48;

  std::vector<synth::SyntheticVideo> scenes;
  for (int cam = 0; cam < kSessions; ++cam) {
    synth::SceneConfig cfg;
    cfg.width = kW;
    cfg.height = kH;
    cfg.num_frames = kFramesPerCam;
    cfg.seed = kSeed + 31 + std::uint64_t(cam) * 131;
    cfg.object_scale = 0.3;
    // A busy feed (short gaps, short dwells): plenty of enter/exit
    // transitions so the hit lists the query thread reads are non-trivial.
    cfg.mean_gap_seconds = 0.5;
    cfg.min_gap_seconds = 0.2;
    cfg.mean_dwell_seconds = 0.7;
    cfg.min_dwell_seconds = 0.3;
    cfg.noise_sigma = 2.0;
    cfg.jitter_px = 1;
    scenes.push_back(synth::GenerateScene(cfg));
  }

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scenes[0].video.frames, scenes[0].truth, 8).ok()) {
    ReportScenarioFailure("live_query", "classifier fit failed");
    return {};
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.nn_input_size = 32;
  runtime::Runtime rt(runtime_config, &classifier);

  LiveQueryResult out;
  std::atomic<std::size_t> events{0};
  for (int c = 0; c < synth::kNumObjectClasses; ++c) {
    rt.query().Subscribe(synth::ObjectClass(c), [&events](const query::QueryEvent&) {
      events.fetch_add(1, std::memory_order_relaxed);
    });
  }

  std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
  for (int cam = 0; cam < kSessions; ++cam) {
    runtime::SessionConfig sc;
    sc.width = kW;
    sc.height = kH;
    sc.encoder = codec::EncoderParams::Semantic(12, 150);
    auto session = rt.OpenSession("cam-" + std::to_string(cam), sc);
    if (!session.ok()) {
      ReportScenarioFailure("live_query", "OpenSession failed");
      return {};
    }
    sessions.push_back(std::move(*session));
  }

  std::atomic<bool> streaming{true};
  std::size_t queries = 0;
  double query_seconds_sum = 0, query_seconds_max = 0;
  std::vector<double> query_seconds;
  query_seconds.reserve(1u << 20);
  std::thread query_thread([&] {
    const query::QueryService& q = rt.query();
    while (streaming.load(std::memory_order_acquire)) {
      for (int c = 0; c < synth::kNumObjectClasses; ++c) {
        const auto cls = synth::ObjectClass(c);
        Stopwatch latency;
        const auto hits = q.FindObject(cls);
        const double seconds = latency.ElapsedSeconds();
        ++queries;
        query_seconds_sum += seconds;
        if (seconds > query_seconds_max) query_seconds_max = seconds;
        query_seconds.push_back(seconds);
        (void)hits;
        (void)q.WhereIs(cls);
      }
    }
  });

  Stopwatch watch;
  std::vector<std::thread> feeds;
  for (int cam = 0; cam < kSessions; ++cam) {
    feeds.emplace_back([cam, &sessions, &scenes] {
      for (const auto& frame : scenes[std::size_t(cam)].video.frames) {
        if (!sessions[std::size_t(cam)]->PushFrame(frame).ok()) return;
      }
    });
  }
  for (auto& t : feeds) t.join();
  for (auto& session : sessions) {
    out.frames_total += session->Drain().frames_pushed;
  }
  const double seconds = watch.ElapsedSeconds();
  streaming.store(false, std::memory_order_release);
  query_thread.join();

  out.sessions = kSessions;
  out.queries = queries;
  out.avg_query_micros =
      queries > 0 ? query_seconds_sum * 1e6 / double(queries) : 0.0;
  if (!query_seconds.empty()) {
    // p99 by rank (nearest-rank on the sorted sample).
    const std::size_t rank =
        std::size_t(0.99 * double(query_seconds.size() - 1));
    std::nth_element(query_seconds.begin(),
                     query_seconds.begin() + std::ptrdiff_t(rank),
                     query_seconds.end());
    out.p99_query_micros = query_seconds[rank] * 1e6;
  }
  out.max_query_micros = query_seconds_max * 1e6;
  out.index_updates = rt.query().version();
  out.updates_per_s =
      seconds > 0 ? double(out.index_updates) / seconds : 0.0;
  out.subscription_events = events.load();
  for (int c = 0; c < synth::kNumObjectClasses; ++c) {
    out.hits_final += rt.query().FindObject(synth::ObjectClass(c)).size();
  }
  (void)rt.Shutdown();
  return out;
}

// ------------------------------------------------------------- wan chaos --

struct WanChaosRow {
  double loss = 0;             ///< configured per-attempt drop probability
  std::size_t frames = 0;
  std::size_t delivered = 0;   ///< I-frames labelled despite the loss
  std::size_t dropped = 0;     ///< explicit give-ups (never silent)
  std::uint64_t retries = 0;   ///< extra WAN attempts the loss cost
  double aggregate_fps = 0;    ///< frames / wall seconds, loss included
  double p99_frame_ms = 0;     ///< push-to-settle p99 of delivered frames
};

struct WanChaosResult {
  std::vector<WanChaosRow> rows;   ///< the loss sweep (0 / 1 / 5 / 20 %)
  std::uint64_t outage_replans = 0;  ///< plan swaps over the outage leg
  std::size_t outage_dropped = 0;
  bool reconciled = true;  ///< every leg: pushed == stored+delivered+dropped
};

WanChaosResult BenchWanChaos() {
  // The transport's overhead curve: one camera session pushed through the
  // reliable WAN send path at increasing packet loss (retry/backoff doing
  // its work, adaptive placement off so the plan never moves), plus an
  // outage leg with adaptive placement on (degrade-to-edge + re-promote).
  // Tracks throughput and delivered-frame p99 latency as the loss climbs,
  // and that the delivered-or-dropped ledger reconciles on every leg.
  constexpr int kW = 64, kH = 48;
  constexpr std::size_t kFrames = 96;
  synth::SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.num_frames = kFrames;
  cfg.seed = kSeed + 47;
  cfg.object_scale = 0.3;
  cfg.mean_gap_seconds = 0.6;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 0.8;
  cfg.min_dwell_seconds = 0.4;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 1;
  const auto scene = synth::GenerateScene(cfg);

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scene.video.frames, scene.truth, 4).ok()) {
    ReportScenarioFailure("wan_chaos", "classifier fit failed");
    return {};
  }

  WanChaosResult out;
  const auto reconciles = [](const runtime::SessionReport& r) {
    return r.frames_pushed == r.frames_stored_edge + r.frames_delivered +
                                  r.frames_dropped &&
           r.frames_delivered == r.labels_written;
  };
  const auto run_leg = [&](runtime::RuntimeConfig rc, double fps)
      -> std::pair<runtime::SessionReport, runtime::RuntimeHealth> {
    rc.nn_input_size = 32;
    runtime::Runtime rt(rc, &classifier);
    runtime::SessionConfig sc;
    sc.width = kW;
    sc.height = kH;
    sc.fps = fps;
    // GOP 4: an I-frame (WAN message) every 4th frame, so the loss sweep
    // exercises the retry path on a meaningful message count.
    sc.encoder = codec::EncoderParams::Semantic(4, 120);
    auto session = rt.OpenSession("chaos-cam", sc);
    if (!session.ok()) {
      ReportScenarioFailure("wan_chaos", "OpenSession failed");
      return {};
    }
    for (const auto& frame : scene.video.frames) {
      if (!(*session)->PushFrame(frame).ok()) break;
    }
    const runtime::SessionReport report = (*session)->Drain();
    const runtime::RuntimeHealth health = rt.health();
    (void)rt.Shutdown();
    return {report, health};
  };

  for (const double loss : {0.0, 0.01, 0.05, 0.20}) {
    runtime::RuntimeConfig rc;
    rc.wan_faults.seed = kSeed + std::uint64_t(loss * 1000.0);
    rc.wan_faults.drop_probability = loss;
    rc.adaptive_placement = false;  // measure the transport, not the planner
    const auto [report, health] = run_leg(rc, 30.0);
    WanChaosRow row;
    row.loss = loss;
    row.frames = report.frames_pushed;
    row.delivered = report.frames_delivered;
    row.dropped = report.frames_dropped;
    row.retries = report.wan_retries;
    row.aggregate_fps =
        Ratio(double(report.frames_pushed), report.wall_seconds);
    row.p99_frame_ms = report.latency_p99_ms;
    out.reconciled = out.reconciled && reconciles(report);
    out.rows.push_back(row);
  }

  // The outage leg: a hard [1.5, 4.5) window over an 8 s stream (96 frames
  // at 12 fps), adaptive placement reacting — degrade to edge, re-promote.
  {
    runtime::RuntimeConfig rc;
    rc.wan_faults.seed = kSeed + 9;
    rc.wan_faults.drop_probability = 0.05;
    rc.wan_faults.outages.push_back({1.5, 4.5});
    rc.wan_retry.max_attempts = 3;
    rc.wan_retry.deadline_ms = 2000.0;
    rc.wan_health.down_after_failures = 3;
    rc.wan_health.loss_alpha = 0.5;
    rc.wan_health.healthy_loss = 0.25;
    rc.wan_health.promote_after_successes = 2;
    const auto [report, health] = run_leg(rc, 12.0);
    out.outage_replans = health.replans;
    out.outage_dropped = report.frames_dropped;
    out.reconciled = out.reconciled && reconciles(report);
  }
  return out;
}

// ------------------------------------------------------------ fleet scale --

struct FleetScaleRow {
  std::size_t sessions = 0;
  std::size_t frames_total = 0;     ///< per leg (both legs push the same)
  double unbatched_fps = 0;         ///< per-frame cloud serving
  double batched_fps = 0;           ///< cross-session batcher on
  double unbatched_p99_ms = 0;      ///< worst per-camera delivered p99
  double batched_p99_ms = 0;
  double occupancy_avg = 0;         ///< batched leg: mean samples per flush
  std::uint64_t batches = 0;        ///< batched leg: flushes run
  bool bit_identical = false;       ///< every camera's db equal across legs
};

struct FleetScaleResult {
  std::vector<FleetScaleRow> rows;  ///< the session-count sweep
  bool bit_identical = true;        ///< all rows
  double speedup_at_max = 0;        ///< batched/unbatched fps, largest fleet
  double batched_fps_at_max = 0;    ///< batched aggregate fps, largest fleet
  double batched_p99_at_max_ms = 0; ///< batched worst-camera p99, largest
};

FleetScaleResult BenchFleetScale() {
  // The fleet knee: N concurrent sessions stream one pre-encoded feed
  // through one runtime, once with per-frame cloud serving and once with
  // the cross-session InferenceBatcher, at identical stage parallelism —
  // the only delta is the batch. Sweeping N exposes where per-frame serving
  // saturates the cloud stage while batches keep amortizing, and the dbs
  // must stay bit-identical across both legs (the batching contract).
  constexpr int kW = 64, kH = 48;
  constexpr std::size_t kFrames = 48;
  synth::SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.num_frames = kFrames;
  cfg.seed = kSeed + 71;
  cfg.object_scale = 0.3;
  cfg.mean_gap_seconds = 0.6;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 0.8;
  cfg.min_dwell_seconds = 0.4;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 1;
  const auto scene = synth::GenerateScene(cfg);

  nn::ClassifierParams cp;
  cp.input_size = 48;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scene.video.frames, scene.truth, 4).ok()) {
    ReportScenarioFailure("fleet_scale", "classifier fit failed");
    return {};
  }
  // GOP 2: one cloud inference (WAN still) every 2nd frame, so the cloud
  // tier dominates the run. Encode once; every session replays the same
  // wire bytes, so the push side is cheap and the cloud is the contended
  // resource.
  auto encoded = codec::VideoEncoder(codec::EncoderParams::Semantic(2, 120))
                     .Encode(scene.video);
  if (!encoded.ok()) {
    ReportScenarioFailure("fleet_scale", "encode failed");
    return {};
  }
  const std::span<const std::uint8_t> bytes(encoded->bytes);

  struct Leg {
    bool ok = false;
    double fps = 0;
    double p99_ms = 0;
    runtime::RuntimeHealth health;
    std::vector<std::map<std::size_t, std::uint32_t>> dbs;  ///< per camera
  };
  const auto run_leg = [&](std::size_t n, bool batched) -> Leg {
    runtime::RuntimeConfig rc;
    rc.nn_input_size = 48;
    rc.wan_parallelism = 2;
    rc.cloud_nn_parallelism = 2;
    if (batched) {
      rc.cloud_batch_max = 32;
      rc.cloud_batch_deadline_ms = 20.0;
    }
    runtime::Runtime rt(rc, &classifier);
    std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
    for (std::size_t cam = 0; cam < n; ++cam) {
      runtime::SessionConfig sc;
      sc.width = kW;
      sc.height = kH;
      sc.encoder = codec::EncoderParams::Semantic(2, 120);
      auto session = rt.OpenSession("fleet-" + std::to_string(cam), sc);
      if (!session.ok()) {
        ReportScenarioFailure("fleet_scale", "OpenSession failed");
        return {};
      }
      sessions.push_back(std::move(*session));
    }
    Leg leg;
    Stopwatch watch;
    std::vector<std::thread> feeds;
    feeds.reserve(n);
    for (auto& session : sessions) {
      feeds.emplace_back([&session, bytes, &encoded] {
        for (const auto& record : encoded->records) {
          if (!session
                   ->PushEncoded(record.type, record.index,
                                 bytes.subspan(record.payload_offset -
                                                   codec::FrameRecord::kHeaderSize,
                                               codec::FrameRecord::kHeaderSize +
                                                   record.payload_size))
                   .ok()) {
            return;
          }
        }
      });
    }
    for (auto& t : feeds) t.join();
    std::size_t frames = 0;
    for (auto& session : sessions) {
      const runtime::SessionReport report = session->Drain();
      frames += report.frames_pushed;
      leg.p99_ms = std::max(leg.p99_ms, report.latency_p99_ms);
      std::map<std::size_t, std::uint32_t> rows;
      for (const auto& [frame, labels] : session->db().rows()) {
        rows.emplace(frame, labels.bits());
      }
      leg.dbs.push_back(std::move(rows));
    }
    const double seconds = watch.ElapsedSeconds();
    leg.fps = seconds > 0 ? double(frames) / seconds : 0.0;
    leg.health = rt.health();
    (void)rt.Shutdown();
    leg.ok = frames == n * kFrames;
    return leg;
  };

  // Best-of-N *interleaved* repetitions per leg: one-core CI containers
  // jitter ~5-10% run to run, which would swamp the batching delta measured
  // from a single pass, and the jitter is time-correlated (throttling
  // phases), so back-to-back same-leg reps share the bias. Alternating
  // unbatched/batched inside each rep and keeping each leg's fastest pass
  // gives both legs the same shot at a quiet window.
  constexpr int kReps = 3;
  FleetScaleResult out;
  for (const std::size_t n : {std::size_t(8), std::size_t(32),
                              std::size_t(64)}) {
    Leg unbatched, batched;
    for (int rep = 0; rep < kReps; ++rep) {
      Leg u = run_leg(n, false);
      Leg b = run_leg(n, true);
      if (!u.ok || !b.ok) {
        ReportScenarioFailure("fleet_scale", "a leg lost frames");
        return out;
      }
      if (!unbatched.ok || u.fps > unbatched.fps) unbatched = std::move(u);
      if (!batched.ok || b.fps > batched.fps) batched = std::move(b);
    }
    FleetScaleRow row;
    row.sessions = n;
    row.frames_total = n * kFrames;
    row.unbatched_fps = unbatched.fps;
    row.batched_fps = batched.fps;
    row.unbatched_p99_ms = unbatched.p99_ms;
    row.batched_p99_ms = batched.p99_ms;
    row.occupancy_avg = batched.health.cloud_batch_occupancy_avg;
    row.batches = batched.health.cloud_batches;
    row.bit_identical = unbatched.dbs == batched.dbs;
    out.bit_identical = out.bit_identical && row.bit_identical;
    out.speedup_at_max = Ratio(row.batched_fps, row.unbatched_fps);
    out.batched_fps_at_max = row.batched_fps;
    out.batched_p99_at_max_ms = row.batched_p99_ms;
    out.rows.push_back(row);
  }
  return out;
}

// -------------------------------------------------------- int8 inference --

struct Int8InferenceRow {
  double fp32_forward_ms = 0;   ///< full backbone forward, deployed size
  double int8_forward_ms = 0;
  double speedup = 0;           ///< fp32_ms / int8_ms, same process
  std::size_t frames = 0;       ///< agreement sample size
  std::size_t decidable = 0;    ///< frames with fp32 margin > noise floor
  double agreement_raw = 0;     ///< fp32 == int8 label bits, all frames
  double agreement_decidable = 0;  ///< same, decidable frames only
  double worst_flip_margin = 0; ///< largest fp32 margin among flipped frames
  bool agreement_ok = false;    ///< the int8 quantization contract held
};

Int8InferenceRow BenchInt8Inference() {
  // The quantization trade in one row: per-frame latency of the deployed
  // backbone at fp32 vs int8 (same process, same input — the speedup the
  // planner banks when a session opens at kInt8), plus the end-to-end
  // agreement contract from docs/perf.md: decidable frames (fp32 prediction
  // margin above the int8 noise floor) must agree >= 99%, any flip must sit
  // below the floor, and the raw all-frames number stays >= 90%.
  constexpr double kNoiseFloor = 0.02;  // ~2x the int8 relative embedding error
  synth::SceneConfig cfg;
  cfg.width = 160;
  cfg.height = 120;
  cfg.num_frames = 300;
  cfg.seed = kSeed + 21;
  cfg.classes = {synth::ObjectClass::kCar, synth::ObjectClass::kPerson};
  cfg.mean_gap_seconds = 1.2;
  cfg.min_gap_seconds = 0.5;
  cfg.mean_dwell_seconds = 2.0;
  cfg.min_dwell_seconds = 1.0;
  cfg.noise_sigma = 1.0;
  const auto scene = synth::GenerateScene(cfg);

  // Deployed-size model: the agreement gate and the latency numbers are
  // properties of the production configuration, not a shrunken test net.
  nn::FrameClassifier classifier;
  if (!classifier.Fit(scene.video.frames, scene.truth, 4).ok()) {
    ReportScenarioFailure("int8_inference", "classifier fit failed");
    return {};
  }

  Int8InferenceRow row;
  const nn::Network& net = classifier.network();
  const nn::Tensor input = classifier.InputTensor(scene.video.frames.front());
  (void)net.Forward(input, nn::Precision::kFp32);  // warm-up: scratch buffers
  (void)net.Forward(input, nn::Precision::kInt8);
  const int laps = 20;
  Stopwatch watch;
  for (int i = 0; i < laps; ++i) (void)net.Forward(input, nn::Precision::kFp32);
  row.fp32_forward_ms = watch.ElapsedSeconds() * 1e3 / laps;
  watch.Start();
  for (int i = 0; i < laps; ++i) (void)net.Forward(input, nn::Precision::kInt8);
  row.int8_forward_ms = watch.ElapsedSeconds() * 1e3 / laps;
  row.speedup = Ratio(row.fp32_forward_ms, row.int8_forward_ms);

  std::size_t agree = 0, decidable_agree = 0;
  bool flips_below_floor = true;
  for (const auto& frame : scene.video.frames) {
    const std::vector<float> embedding =
        classifier.Embed(frame, nn::Precision::kFp32);
    const auto fp32 = classifier.PredictFromEmbedding(embedding);
    const auto int8 = classifier.Predict(frame, nn::Precision::kInt8);
    if (!fp32.ok() || !int8.ok()) {
      ReportScenarioFailure("int8_inference", "prediction failed");
      return row;
    }
    const double margin = classifier.PredictionMargin(embedding);
    const bool same = fp32->bits() == int8->bits();
    ++row.frames;
    if (same) ++agree;
    if (margin > kNoiseFloor) {
      ++row.decidable;
      if (same) ++decidable_agree;
    }
    if (!same) {
      row.worst_flip_margin = std::max(row.worst_flip_margin, margin);
      flips_below_floor = flips_below_floor && margin <= kNoiseFloor;
    }
  }
  row.agreement_raw = Ratio(double(agree), double(row.frames));
  row.agreement_decidable =
      Ratio(double(decidable_agree), double(row.decidable));
  row.agreement_ok = row.decidable > 0 && flips_below_floor &&
                     row.agreement_decidable >= 0.99 &&
                     row.agreement_raw >= 0.9;
  if (!row.agreement_ok) {
    ReportScenarioFailure("int8_inference",
                          "int8/fp32 agreement contract violated");
  }
  return row;
}

// ------------------------------------------------------ pipelined encode --

struct PipelinedEncodeRow {
  std::size_t frames = 0;
  double parallel_fps = 0;   ///< pass-1 parallel, pipelining off
  double pipelined_fps = 0;  ///< + frame-level pipelining (entropy overlap)
  double speedup = 0;
  bool bit_identical = false;  ///< both legs byte-equal (hard gate)
  bool multicore = false;  ///< >= 2 hardware threads: the speedup gate arms
};

PipelinedEncodeRow BenchPipelinedEncode(int parallel_threads) {
  // The frame-level pipelining dividend, isolated: the same busy feed as
  // the encode scenario, parallel pass 1 in both legs, and the ONLY delta
  // is params.pipeline — frame N's serial entropy sweep overlapping frame
  // N+1's pass 1. Bitstreams must stay byte-identical; the speedup is the
  // entropy fraction bought back (>= 1.2x on multi-core hardware, ~1.0x on
  // one core where there is nothing to overlap with).
  synth::SceneConfig cfg;
  cfg.width = 320;
  cfg.height = 240;
  cfg.num_frames = 96;
  cfg.seed = kSeed;
  cfg.object_scale = 0.28;
  cfg.allow_concurrent = true;
  cfg.mean_gap_seconds = 1.0;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 2.0;
  cfg.min_dwell_seconds = 0.8;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 2;
  const auto scene = synth::GenerateScene(cfg);

  auto run = [&](bool pipeline) {
    codec::EncoderParams params = codec::EncoderParams::DefaultEncoding();
    params.threads = parallel_threads;
    params.pipeline = pipeline;
    Stopwatch watch;
    auto encoded = codec::VideoEncoder(params).Encode(scene.video);
    const double seconds = watch.ElapsedSeconds();
    return std::pair(std::move(encoded), seconds);
  };

  PipelinedEncodeRow row;
  row.frames = scene.video.frames.size();
  row.multicore = std::thread::hardware_concurrency() >= 2;

  // Best-of-N interleaved reps: each leg runs ~0.2s post-SIMD, so one-off
  // scheduler noise would swamp the overlap delta; alternating legs gives
  // both the same shot at a quiet window (same rationale as fleet_scale).
  constexpr int kReps = 3;
  double plain_s = 0, piped_s = 0;
  std::vector<std::uint8_t> plain_bytes, piped_bytes;
  for (int rep = 0; rep < kReps; ++rep) {
    auto [plain, s0] = run(false);
    auto [piped, s1] = run(true);
    if (!plain.ok() || !piped.ok()) {
      ReportScenarioFailure("pipelined_encode", "encode failed");
      return row;
    }
    if (rep == 0) {
      plain_bytes = std::move(plain->bytes);
      piped_bytes = std::move(piped->bytes);
    }
    if (plain_s == 0 || s0 < plain_s) plain_s = s0;
    if (piped_s == 0 || s1 < piped_s) piped_s = s1;
  }
  row.parallel_fps = Ratio(double(row.frames), plain_s);
  row.pipelined_fps = Ratio(double(row.frames), piped_s);
  row.speedup = Ratio(row.pipelined_fps, row.parallel_fps);
  row.bit_identical = plain_bytes == piped_bytes;
  if (!row.bit_identical) {
    ReportScenarioFailure("pipelined_encode",
                          "pipelined bitstream differs from non-pipelined");
  }
  return row;
}

// ----------------------------------------------------------- trace overhead --

struct TraceOverheadRow {
  std::size_t frames = 0;      ///< frames served per leg (both sessions)
  double untraced_s = 0;       ///< best leg CPU time, recorder off
  double traced_s = 0;         ///< best leg CPU time, recorder on
  double overhead_pct = 0;     ///< (traced/untraced - 1) * 100, CPU time
  std::uint64_t events = 0;    ///< events the traced leg recorded
  std::uint64_t dropped_events = 0;  ///< ring-wraparound overwrites (want 0)
  bool bit_identical = false;  ///< bitstream + every camera's db equal
};

TraceOverheadRow BenchTraceOverhead(int parallel_threads,
                                    const std::string& trace_path) {
  // The observability contract, measured: one identical workload — a
  // parallel pipelined encode plus two camera sessions served through 5%
  // WAN loss into the batched cloud tier — runs with the trace recorder off
  // and on, and the deltas must be (a) nothing in the output (bitstream and
  // per-camera dbs byte-identical, hard failure here) and (b) under 2% in
  // wall time (gated in tools/check_bench.py). Legs are interleaved
  // best-of-N like fleet_scale so scheduler noise hits both equally. The
  // traced leg is a chaos leg on purpose: its Chrome trace (written to
  // trace_path when given) shows per-frame encode passes, WAN retries,
  // batcher residency, and db inserts — the artifact CI uploads.
  // The encode part uses the pipelined_encode busy feed (320x240): the leg
  // has to run long enough (~0.25s+) that the recorder's one-time costs —
  // each fresh thread's first event allocates its ring — amortize below the
  // per-event noise floor; a 60ms leg would report ring setup as "overhead".
  synth::SceneConfig enc_cfg;
  enc_cfg.width = 320;
  enc_cfg.height = 240;
  enc_cfg.num_frames = 192;
  enc_cfg.seed = kSeed;
  enc_cfg.object_scale = 0.28;
  enc_cfg.allow_concurrent = true;
  enc_cfg.mean_gap_seconds = 1.0;
  enc_cfg.min_gap_seconds = 0.3;
  enc_cfg.mean_dwell_seconds = 2.0;
  enc_cfg.min_dwell_seconds = 0.8;
  enc_cfg.noise_sigma = 2.0;
  enc_cfg.jitter_px = 2;
  const auto enc_scene = synth::GenerateScene(enc_cfg);

  constexpr int kW = 64, kH = 48;
  constexpr std::size_t kFrames = 96;
  synth::SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.num_frames = kFrames;
  cfg.seed = kSeed + 83;
  cfg.object_scale = 0.3;
  cfg.mean_gap_seconds = 0.6;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 0.8;
  cfg.min_dwell_seconds = 0.4;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 1;
  const auto scene = synth::GenerateScene(cfg);

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scene.video.frames, scene.truth, 4).ok()) {
    ReportScenarioFailure("trace_overhead", "classifier fit failed");
    return {};
  }

  struct Leg {
    bool ok = false;
    double seconds = 0;  ///< process CPU seconds, all threads summed
    std::vector<std::uint8_t> bytes;  ///< the explicit encode's bitstream
    std::vector<std::map<std::size_t, std::uint32_t>> dbs;  ///< per camera
  };
  const auto run_leg = [&](bool traced) -> Leg {
    // 4096 events/thread: the whole leg records ~1.5k events across all
    // threads, and each fresh thread's ring is allocated+zeroed inside the
    // timed region — a 16k default ring would bill ~1% of the leg to setup.
    if (traced) obs::StartTracing(4096);  // resets rings: each rep is clean
    Leg leg;
    // Recording overhead is CPU work (ring append, clock reads, the extra
    // branch), so the legs are timed in process CPU seconds — a hard 2%
    // gate on wall time is untestable on a shared box where adjacent legs
    // wobble +/-4% from scheduling alone, while CPU time charges exactly
    // the cycles the recorder burned and ignores backoff sleeps and
    // preemption. std::clock() sums every thread on POSIX, which is the
    // point: per-thread recording costs all land in the measurement.
    const std::clock_t cpu_start = std::clock();
    // Part 1: the encode hot path with every span-emitting feature on.
    codec::EncoderParams ep = codec::EncoderParams::DefaultEncoding();
    ep.threads = parallel_threads;
    ep.pipeline = true;
    auto encoded = codec::VideoEncoder(ep).Encode(enc_scene.video);
    if (!encoded.ok()) {
      ReportScenarioFailure("trace_overhead", "encode failed");
      return leg;
    }
    leg.bytes = std::move(encoded->bytes);
    // Part 2: two sessions through the chaos WAN into the batched cloud.
    runtime::RuntimeConfig rc;
    rc.nn_input_size = 32;
    rc.wan_faults.seed = kSeed + 83;
    rc.wan_faults.drop_probability = 0.05;
    rc.adaptive_placement = false;  // same plan both legs, deterministic
    rc.cloud_batch_max = 8;
    rc.cloud_batch_deadline_ms = 10.0;
    runtime::Runtime rt(rc, &classifier);
    std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
    for (int cam = 0; cam < 2; ++cam) {
      runtime::SessionConfig sc;
      sc.width = kW;
      sc.height = kH;
      sc.encoder = codec::EncoderParams::Semantic(4, 120);
      auto session = rt.OpenSession("trace-" + std::to_string(cam), sc);
      if (!session.ok()) {
        ReportScenarioFailure("trace_overhead", "OpenSession failed");
        return leg;
      }
      sessions.push_back(std::move(*session));
    }
    std::vector<std::thread> feeds;
    for (auto& session : sessions) {
      feeds.emplace_back([&session, &scene] {
        for (const auto& frame : scene.video.frames) {
          if (!session->PushFrame(frame).ok()) return;
        }
      });
    }
    for (auto& t : feeds) t.join();
    std::size_t frames = 0;
    for (auto& session : sessions) {
      const runtime::SessionReport report = session->Drain();
      frames += report.frames_pushed;
      std::map<std::size_t, std::uint32_t> rows;
      for (const auto& [frame, labels] : session->db().rows()) {
        rows.emplace(frame, labels.bits());
      }
      leg.dbs.push_back(std::move(rows));
    }
    (void)rt.Shutdown();
    leg.seconds = double(std::clock() - cpu_start) / CLOCKS_PER_SEC;
    if (traced) obs::StopTracing();
    leg.ok = frames == 2 * kFrames;
    return leg;
  };

  // The gate on this number is a hard 2% absolute in check_bench.py. Each
  // rep's off/on legs run back to back and yield one paired CPU-time
  // ratio; the overhead is the MEDIAN paired ratio, robust to a single rep
  // landing on a busy phase (CPU time is already far quieter than wall,
  // but one-core containers still steal the occasional timeslice). The
  // within-pair order flips every rep so a drifting box biases neither leg
  // (even rep count: both orders run equally often, and the median of six
  // ratios averages the middle two — one from each order on a quiet box).
  constexpr int kReps = 6;
  TraceOverheadRow row;
  row.frames = 2 * kFrames;
  Leg untraced, traced;
  std::vector<double> ratios;
  for (int rep = 0; rep < kReps; ++rep) {
    const bool on_first = rep % 2 != 0;
    Leg first = run_leg(on_first);
    Leg second = run_leg(!on_first);
    Leg& off = on_first ? second : first;
    Leg& on = on_first ? first : second;
    if (!off.ok || !on.ok) {
      ReportScenarioFailure("trace_overhead", "a leg lost frames");
      return row;
    }
    ratios.push_back(Ratio(on.seconds, off.seconds));
    if (!untraced.ok || off.seconds < untraced.seconds)
      untraced = std::move(off);
    if (!traced.ok || on.seconds < traced.seconds) traced = std::move(on);
  }
  std::sort(ratios.begin(), ratios.end());
  const std::size_t mid = ratios.size() / 2;
  const double median = ratios.size() % 2 != 0
                            ? ratios[mid]
                            : (ratios[mid - 1] + ratios[mid]) / 2.0;
  row.untraced_s = untraced.seconds;
  row.traced_s = traced.seconds;
  row.overhead_pct = (median - 1.0) * 100.0;
  row.bit_identical =
      untraced.bytes == traced.bytes && untraced.dbs == traced.dbs;
  if (!row.bit_identical) {
    ReportScenarioFailure("trace_overhead",
                          "tracing changed the bitstream or a db");
  }
  // The last traced rep's rings are still snapshot-able (StopTracing keeps
  // them until the next StartTracing): count events to prove the recorder
  // actually ran — a silently-disabled recorder would ace the 2% gate.
  for (const auto& thread : obs::SnapshotTrace()) {
    row.events += thread.events.size();
    row.dropped_events += thread.dropped;
  }
  if (row.events == 0) {
    ReportScenarioFailure("trace_overhead", "traced leg recorded no events");
  }
  if (!trace_path.empty()) {
    if (const auto s = obs::WriteChromeTrace(trace_path); !s.ok()) {
      ReportScenarioFailure("trace_overhead", "could not write Chrome trace");
    } else {
      std::printf("trace_overhead: Chrome trace written to %s\n",
                  trace_path.c_str());
    }
  }
  return row;
}

// ------------------------------------------------------------ durability --

struct DurabilityRow {
  // Journal ingest overhead: identical camera sessions served through the
  // runtime with the results store on vs off, paired interleaved CPU-time
  // legs, median ratio (gated < 5%).
  std::size_t ingest_rows = 0;  ///< frames pushed through the sessions
  double journal_off_s = 0;
  double journal_on_s = 0;
  double journal_overhead_pct = 0;
  // Boot-time recovery of a 100k-record journal: RecoverStore + replay
  // into a live QueryService, wall time.
  std::size_t recovery_records = 0;
  double recovery_s = 0;
  double recovery_records_per_s = 0;
  bool recovered_identical = false;  ///< replay == live-run snapshot
  // Snapshot-publication cost vs history depth: per-insert Publish with
  // ~1k intervals behind the camera vs ~100k (gated flat, < 3x — the
  // pre-sharding index was ~100x here).
  std::size_t publish_history = 0;
  double publish_small_us = 0;
  double publish_large_us = 0;
  double publish_flat_ratio = 0;
};

/// Deterministic ingest label stream: a few-frame cadence over two classes
/// so intervals keep opening and closing on the incremental publish path.
std::uint8_t DurabilityBits(std::size_t i) {
  switch (i % 6) {
    case 0:
    case 1:
      return 0x01;  // car
    case 2:
      return 0x03;  // car+bus
    case 3:
      return 0x02;  // bus
    default:
      return 0x00;  // empty
  }
}

DurabilityRow BenchDurability() {
  namespace fs = std::filesystem;
  DurabilityRow row;
  const std::string scratch =
      (fs::temp_directory_path() / "sieve_bench_durability").string();
  std::error_code ec;
  fs::remove_all(scratch, ec);
  fs::create_directories(scratch, ec);
  if (ec) {
    ReportScenarioFailure("durability", "cannot create scratch dir");
    return row;
  }

  // Part 1 — journal ingest overhead, measured where it matters: the
  // runtime's session ingest path. Two identical camera sessions stream a
  // scene through encode + classify + store, once with the results store
  // off (the pre-durability configuration) and once journaling every insert
  // at the default group-commit cadence into a fresh store dir. Timed in
  // process CPU seconds like trace_overhead (group commit makes device
  // waits rare; the recurring cost is CPU — framing, CRC32, buffered
  // fwrite). Legs are paired and order-flipped per rep; the gate takes the
  // median ratio.
  constexpr int kW = 64, kH = 48;
  constexpr std::size_t kFrames = 96;
  synth::SceneConfig cfg;
  cfg.width = kW;
  cfg.height = kH;
  cfg.num_frames = kFrames;
  cfg.seed = kSeed + 101;
  cfg.object_scale = 0.3;
  cfg.mean_gap_seconds = 0.6;
  cfg.min_gap_seconds = 0.3;
  cfg.mean_dwell_seconds = 0.8;
  cfg.min_dwell_seconds = 0.4;
  cfg.noise_sigma = 2.0;
  cfg.jitter_px = 1;
  const auto scene = synth::GenerateScene(cfg);
  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scene.video.frames, scene.truth, 4).ok()) {
    ReportScenarioFailure("durability", "classifier fit failed");
    return row;
  }
  // Each session pushes the scene several times over: a leg has to run
  // ~0.2s+ of CPU for the paired ratio to resolve a 5% gate above
  // scheduler noise (same reasoning as trace_overhead's leg length).
  constexpr std::size_t kPasses = 8;
  row.ingest_rows = 2 * kPasses * kFrames;
  int leg_serial = 0;
  const auto ingest_leg = [&](bool journaled) -> double {
    runtime::RuntimeConfig rc;
    rc.nn_input_size = 32;
    rc.adaptive_placement = false;  // same plan both legs, deterministic
    if (journaled) {
      // A fresh dir per leg: reusing one would turn the second leg into a
      // reconnect/resume run, a different code path.
      rc.store.dir = scratch + "/ingest" + std::to_string(leg_serial++);
    }
    const std::clock_t cpu_start = std::clock();
    runtime::Runtime rt(rc, &classifier);
    std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
    for (int cam = 0; cam < 2; ++cam) {
      runtime::SessionConfig sc;
      sc.width = kW;
      sc.height = kH;
      auto session = rt.OpenSession("dur-" + std::to_string(cam), sc);
      if (!session.ok()) {
        ReportScenarioFailure("durability", "OpenSession failed");
        return -1.0;
      }
      sessions.push_back(std::move(*session));
    }
    std::size_t frames = 0;
    for (auto& session : sessions) {
      for (std::size_t pass = 0; pass < kPasses; ++pass) {
        for (const auto& frame : scene.video.frames) {
          if (!session->PushFrame(frame).ok()) break;
        }
      }
      frames += session->Drain().frames_pushed;
    }
    (void)rt.Shutdown();
    const double s = double(std::clock() - cpu_start) / CLOCKS_PER_SEC;
    if (frames != 2 * kPasses * kFrames) {
      ReportScenarioFailure("durability", "an ingest leg lost frames");
      return -1.0;
    }
    return s;
  };

  constexpr int kReps = 6;
  {
    std::vector<double> ratios;
    for (int rep = 0; rep < kReps; ++rep) {
      const bool on_first = rep % 2 != 0;
      const double first = ingest_leg(on_first);
      const double second = ingest_leg(!on_first);
      if (first < 0 || second < 0) return row;
      const double off = on_first ? second : first;
      const double on = on_first ? first : second;
      ratios.push_back(Ratio(on, off));
      if (row.journal_off_s == 0 || off < row.journal_off_s)
        row.journal_off_s = off;
      if (row.journal_on_s == 0 || on < row.journal_on_s)
        row.journal_on_s = on;
    }
    std::sort(ratios.begin(), ratios.end());
    const std::size_t mid = ratios.size() / 2;
    const double median = ratios.size() % 2 != 0
                              ? ratios[mid]
                              : (ratios[mid - 1] + ratios[mid]) / 2.0;
    row.journal_overhead_pct = (median - 1.0) * 100.0;
  }

  // Part 2 — 100k-record boot recovery. Write a sealed 100k-insert journal,
  // then time the full boot path: RecoverStore (scan + repair) plus replay
  // into a fresh QueryService through a ResultsDatabase observer — exactly
  // what Runtime does before accepting sessions. Identity check: the
  // recovered snapshot must match a live run of the same stream.
  constexpr std::size_t kRecoveryRows = 100'000;
  const std::string rec_dir = scratch + "/recover";
  fs::create_directories(rec_dir, ec);
  {
    auto writer = store::JournalWriter::Open(
        rec_dir + "/" + store::JournalFileName("deep#1"), store::FsyncPolicy{});
    if (!writer.ok()) {
      ReportScenarioFailure("durability", "recovery journal open failed");
      return row;
    }
    bool ok = (*writer)->AppendRegister("deep#1", "deep", 4.0, 30.0).ok();
    for (std::size_t i = 0; ok && i < kRecoveryRows; ++i) {
      ok = (*writer)->AppendInsert(std::uint64_t(i), DurabilityBits(i)).ok();
    }
    ok = ok && (*writer)->AppendSeal(kRecoveryRows).ok() &&
         (*writer)->Close().ok();
    if (!ok) {
      ReportScenarioFailure("durability", "recovery journal write failed");
      return row;
    }
  }
  // The live-run reference the replay must reproduce.
  query::QueryService live_ref;
  {
    live_ref.RegisterCamera("deep#1", "deep", query::CameraClock{4.0, 30.0});
    core::ResultsDatabase db;
    db.set_observer([&live_ref](const core::ResultsDatabase& d,
                                std::size_t frame,
                                const synth::LabelSet& labels) {
      live_ref.Publish("deep#1", d, frame, labels);
    });
    for (std::size_t i = 0; i < kRecoveryRows; ++i) {
      db.Insert(i, synth::LabelSet(DurabilityBits(i)));
    }
    live_ref.Seal("deep#1", kRecoveryRows);
  }
  query::QueryService recovered;
  {
    Stopwatch timer;
    auto report = store::RecoverStore(rec_dir);
    if (!report.ok()) {
      ReportScenarioFailure("durability", "RecoverStore failed");
      return row;
    }
    for (const auto& cam : report->cameras) {
      recovered.RegisterCamera(
          cam.route, cam.camera_id,
          query::CameraClock{cam.open_seconds, cam.fps});
      core::ResultsDatabase db;
      db.set_observer([&recovered, &cam](const core::ResultsDatabase& d,
                                         std::size_t frame,
                                         const synth::LabelSet& labels) {
        recovered.Publish(cam.route, d, frame, labels);
      });
      for (const auto& ins : cam.inserts) {
        db.Insert(std::size_t(ins.frame), synth::LabelSet(ins.label_bits));
      }
      if (cam.sealed) recovered.Seal(cam.route, std::size_t(cam.total_frames));
    }
    row.recovery_s = timer.ElapsedSeconds();
    row.recovery_records = report->records;
  }
  row.recovery_records_per_s =
      row.recovery_s > 0 ? double(row.recovery_records) / row.recovery_s : 0;
  {
    const auto want = live_ref.snapshot();
    const auto got = recovered.snapshot();
    row.recovered_identical = want->cameras.size() == got->cameras.size();
    for (const auto& [route, ref] : want->cameras) {
      const auto it = got->cameras.find(route);
      if (it == got->cameras.end()) {
        row.recovered_identical = false;
        break;
      }
      const auto& rec = *it->second;
      row.recovered_identical =
          row.recovered_identical && rec.sealed == ref->sealed &&
          rec.total_frames == ref->total_frames &&
          rec.inserts == ref->inserts;
      for (std::size_t c = 0; c < std::size_t(synth::kNumObjectClasses); ++c) {
        row.recovered_identical =
            row.recovered_identical &&
            rec.intervals[c].Materialize() == ref->intervals[c].Materialize();
      }
    }
    if (!row.recovered_identical) {
      ReportScenarioFailure("durability",
                            "recovered snapshot differs from the live run");
    }
  }

  // Part 3 — snapshot publication vs history depth. Publish cost must not
  // grow with a camera's interval history (ROADMAP item 3): probe the
  // per-insert Publish cost against a camera with ~1k intervals behind it
  // and one with ~100k. Publishes go straight to the service (in-order, so
  // the index never touches the db); the probe continues the alternating
  // stream so every probe insert does real open/close interval work. The
  // deep camera is built once; each rep rebuilds a fresh shallow camera and
  // order-flips its probes. Ratio is the median across reps.
  constexpr std::size_t kSmallIntervals = 1'000;
  constexpr std::size_t kLargeIntervals = 100'000;
  constexpr std::size_t kProbeRows = 5'000;
  row.publish_history = kLargeIntervals;
  {
    query::QueryService service;
    const core::ResultsDatabase dummy;  // in-order publishes never read it
    const auto alternating = [](std::size_t i) {
      // Even frame opens a car interval, odd closes it: one interval per
      // two rows on exactly one chain.
      return synth::LabelSet(i % 2 == 0 ? 0x01 : 0x00);
    };
    const auto build = [&](const std::string& route, std::size_t intervals) {
      service.RegisterCamera(route, "probe", query::CameraClock{0.0, 30.0});
      for (std::size_t i = 0; i < 2 * intervals; ++i) {
        service.Publish(route, dummy, i, alternating(i));
      }
      return 2 * intervals;  // the next frame id
    };
    std::size_t deep_next = build("deep#probe", kLargeIntervals);
    const auto probe = [&](const std::string& route,
                           std::size_t& next) -> double {
      const std::clock_t cpu_start = std::clock();
      for (std::size_t i = 0; i < kProbeRows; ++i) {
        service.Publish(route, dummy, next, alternating(next));
        ++next;
      }
      const double s = double(std::clock() - cpu_start) / CLOCKS_PER_SEC;
      return s * 1e6 / double(kProbeRows);
    };
    std::vector<double> ratios;
    for (int rep = 0; rep < kReps; ++rep) {
      const std::string small_route = "small#" + std::to_string(rep);
      std::size_t small_next = build(small_route, kSmallIntervals);
      double small_us, large_us;
      if (rep % 2 != 0) {
        large_us = probe("deep#probe", deep_next);
        small_us = probe(small_route, small_next);
      } else {
        small_us = probe(small_route, small_next);
        large_us = probe("deep#probe", deep_next);
      }
      ratios.push_back(Ratio(large_us, small_us));
      if (row.publish_small_us == 0 || small_us < row.publish_small_us)
        row.publish_small_us = small_us;
      if (row.publish_large_us == 0 || large_us < row.publish_large_us)
        row.publish_large_us = large_us;
    }
    std::sort(ratios.begin(), ratios.end());
    const std::size_t mid = ratios.size() / 2;
    row.publish_flat_ratio = ratios.size() % 2 != 0
                                 ? ratios[mid]
                                 : (ratios[mid - 1] + ratios[mid]) / 2.0;
  }

  fs::remove_all(scratch, ec);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  // Usage: perf_hotpaths [out.json] [parallel_threads] [scenarios] [trace.json]
  // parallel_threads overrides the thread count of the parallel encode leg
  // (default 0 = one per hardware thread). scenarios is a comma-separated
  // filter (default: run everything). trace.json, when given, receives the
  // trace_overhead scenario's Chrome trace.
  const char* out_path = argc > 1 ? argv[1] : "BENCH_hotpaths.json";
  const int parallel_threads = argc > 2 ? std::atoi(argv[2]) : 0;
  if (argc > 3) g_scenarios = argv[3];
  const std::string trace_path = argc > 4 ? argv[4] : "";
  if (!ValidateScenarios(g_scenarios)) return 2;
  const unsigned hw = std::thread::hardware_concurrency();

  std::printf("SiEVE hot-path benchmark (%u hardware threads)%s%s\n", hw,
              g_scenarios.empty() ? "" : ", scenarios: ",
              g_scenarios.c_str());

  const EncodeResult enc = Enabled("encode") ? BenchEncode(parallel_threads)
                                             : EncodeResult{};
  if (Enabled("encode")) {
    std::printf("encode:   reference %.1f fps | serial+prune %.1f fps (%.2fx) | "
                "parallel %.1f fps (%.2fx) | bit-identical: %s\n",
                enc.reference_fps, enc.serial_fps,
                Ratio(enc.serial_fps, enc.reference_fps), enc.parallel_fps,
                Ratio(enc.parallel_fps, enc.reference_fps),
                enc.bit_identical ? "yes" : "NO");
  }

  const MotionResultRow mot = Enabled("motion") ? BenchMotion()
                                                : MotionResultRow{};
  if (Enabled("motion")) {
    std::printf("fullsearch: reference %.2fM cand/s | pruned %.2fM cand/s "
                "(%.2fx) | identical: %s\n",
                mot.reference_cand_per_s / 1e6, mot.pruned_cand_per_s / 1e6,
                Ratio(mot.pruned_cand_per_s, mot.reference_cand_per_s),
                mot.identical ? "yes" : "NO");
  }

  const KernelBenchRow kernels = Enabled("dct_sad_kernels")
                                     ? BenchDctSadKernels()
                                     : KernelBenchRow{};
  if (Enabled("dct_sad_kernels")) {
    std::printf("dct_sad_kernels (%s): fdct %.2f -> %.2f Mblk/s (%.2fx) | "
                "idct %.2f -> %.2f Mblk/s (%.2fx) | sad16 %.0f -> %.0f "
                "Mpix/s (%.2fx) | quant %.2f -> %.2f Mblk/s (%.2fx) | "
                "identical: %s\n",
                kernels.active_arch, kernels.fdct_scalar_mblocks_s,
                kernels.fdct_simd_mblocks_s, kernels.fdct_speedup,
                kernels.idct_scalar_mblocks_s, kernels.idct_simd_mblocks_s,
                kernels.idct_speedup, kernels.sad_scalar_mpix_s,
                kernels.sad_simd_mpix_s, kernels.sad_speedup,
                kernels.quant_scalar_mblocks_s, kernels.quant_simd_mblocks_s,
                kernels.quant_speedup, kernels.identical ? "yes" : "NO");
    for (const auto& col : kernels.arches) {
      std::printf("  %-6s fdct %.2f Mblk/s (%.2fx) | idct %.2f Mblk/s "
                  "(%.2fx) | sad16 %.0f Mpix/s (%.2fx) | quant %.2f Mblk/s "
                  "(%.2fx) | identical: %s\n",
                  col.arch, col.fdct_mblocks_s, col.fdct_speedup,
                  col.idct_mblocks_s, col.idct_speedup, col.sad_mpix_s,
                  col.sad_speedup, col.quant_mblocks_s, col.quant_speedup,
                  col.identical ? "yes" : "NO");
    }
  }

  const GemmRow gemm = Enabled("gemm") ? BenchGemm() : GemmRow{};
  if (Enabled("gemm")) {
    std::printf("gemm 1024x288x64: naive %.2f GFLOP/s | blocked %.2f GFLOP/s "
                "(%.2fx)\n",
                gemm.naive_gflops, gemm.blocked_gflops,
                Ratio(gemm.blocked_gflops, gemm.naive_gflops));
  }

  const ConvRow conv = Enabled("conv") ? BenchConvForward() : ConvRow{};
  if (Enabled("conv")) {
    std::printf("backbone forward (3x96x96): %.2f ms (%.2f GFLOP/s)\n",
                conv.forward_ms, conv.gflops);
  }

  const MultiSessionResult multi =
      Enabled("multi_session") ? BenchMultiSession() : MultiSessionResult{};
  if (Enabled("multi_session")) {
    std::printf("multi_session: %zu cameras, %zu frames, aggregate %.1f fps\n",
                multi.sessions, multi.frames_total, multi.aggregate_fps);
    for (const auto& stage : multi.stages) {
      std::printf("  stage %-20s in %-5zu out %-5zu busy %.3fs\n",
                  stage.name.c_str(), stage.in, stage.out, stage.busy_seconds);
    }
  }

  const NnPlacementResult placement =
      Enabled("nn_placement") ? BenchNnPlacement() : NnPlacementResult{};
  if (Enabled("nn_placement")) {
    std::printf("nn_placement (%zu layers):\n", placement.layer_count);
    for (const auto& row : placement.rows) {
      std::printf("  %-6s split %zu/%zu | %zu frames (%zu I) | %.3fs "
                  "(%.2f ms/frame, predicted %.2f ms) | WAN %llu bytes\n",
                  row.mode, row.split, placement.layer_count, row.frames,
                  row.iframes, row.wall_seconds, row.latency_ms_per_frame,
                  row.predicted_total_ms,
                  static_cast<unsigned long long>(row.wan_bytes));
    }
  }

  const LiveQueryResult live =
      Enabled("live_query") ? BenchLiveQuery() : LiveQueryResult{};
  if (Enabled("live_query")) {
    std::printf("live_query: %zu cameras | %zu queries while streaming "
                "(avg %.1f us, p99 %.1f us, max %.1f us) | %llu index updates "
                "(%.1f/s) | %zu events, %zu final hits\n",
                live.sessions, live.queries, live.avg_query_micros,
                live.p99_query_micros, live.max_query_micros,
                static_cast<unsigned long long>(live.index_updates),
                live.updates_per_s, live.subscription_events,
                live.hits_final);
  }

  const WanChaosResult chaos =
      Enabled("wan_chaos") ? BenchWanChaos() : WanChaosResult{};
  if (Enabled("wan_chaos")) {
    std::printf("wan_chaos: outage leg %llu replans, %zu dropped | "
                "reconciled: %s\n",
                static_cast<unsigned long long>(chaos.outage_replans),
                chaos.outage_dropped, chaos.reconciled ? "yes" : "NO");
    for (const auto& row : chaos.rows) {
      std::printf("  loss %4.0f%% | %zu frames %.1f fps | delivered %zu "
                  "dropped %zu retries %llu | p99 %.2f ms\n",
                  row.loss * 100.0, row.frames, row.aggregate_fps,
                  row.delivered, row.dropped,
                  static_cast<unsigned long long>(row.retries),
                  row.p99_frame_ms);
    }
  }

  const FleetScaleResult fleet =
      Enabled("fleet_scale") ? BenchFleetScale() : FleetScaleResult{};
  if (Enabled("fleet_scale")) {
    std::printf("fleet_scale: bit-identical %s | speedup at largest fleet "
                "%.2fx\n",
                fleet.bit_identical ? "yes" : "NO", fleet.speedup_at_max);
    for (const auto& row : fleet.rows) {
      std::printf("  %3zu cams | unbatched %.1f fps p99 %.2f ms | batched "
                  "%.1f fps p99 %.2f ms (%.2fx) | %llu batches, occupancy "
                  "%.1f\n",
                  row.sessions, row.unbatched_fps, row.unbatched_p99_ms,
                  row.batched_fps, row.batched_p99_ms,
                  Ratio(row.batched_fps, row.unbatched_fps),
                  static_cast<unsigned long long>(row.batches),
                  row.occupancy_avg);
    }
  }

  const Int8InferenceRow int8 =
      Enabled("int8_inference") ? BenchInt8Inference() : Int8InferenceRow{};
  if (Enabled("int8_inference")) {
    std::printf("int8_inference: forward %.2f -> %.2f ms (%.2fx) | agreement "
                "raw %.1f%% decidable %.1f%% (%zu/%zu frames decidable) | "
                "worst flip margin %.4f | contract: %s\n",
                int8.fp32_forward_ms, int8.int8_forward_ms, int8.speedup,
                int8.agreement_raw * 100.0, int8.agreement_decidable * 100.0,
                int8.decidable, int8.frames, int8.worst_flip_margin,
                int8.agreement_ok ? "ok" : "VIOLATED");
  }

  const PipelinedEncodeRow piped = Enabled("pipelined_encode")
                                       ? BenchPipelinedEncode(parallel_threads)
                                       : PipelinedEncodeRow{};
  if (Enabled("pipelined_encode")) {
    std::printf("pipelined_encode: parallel %.1f fps | +pipeline %.1f fps "
                "(%.2fx) | bit-identical: %s%s\n",
                piped.parallel_fps, piped.pipelined_fps, piped.speedup,
                piped.bit_identical ? "yes" : "NO",
                piped.multicore ? "" : " (single core: no overlap expected)");
  }

  const TraceOverheadRow trace =
      Enabled("trace_overhead")
          ? BenchTraceOverhead(parallel_threads, trace_path)
          : TraceOverheadRow{};
  if (Enabled("trace_overhead")) {
    std::printf("trace_overhead: %.3fs off -> %.3fs on (%+.2f%%) | %llu "
                "events (%llu dropped) | bit-identical: %s\n",
                trace.untraced_s, trace.traced_s, trace.overhead_pct,
                static_cast<unsigned long long>(trace.events),
                static_cast<unsigned long long>(trace.dropped_events),
                trace.bit_identical ? "yes" : "NO");
  }

  const DurabilityRow dur =
      Enabled("durability") ? BenchDurability() : DurabilityRow{};
  if (Enabled("durability")) {
    std::printf("durability: ingest %zu frames %.3fs off -> %.3fs on (%+.2f%%) "
                "| recovery %zu records in %.3fs (%.0fk rec/s) | publish "
                "%.3f -> %.3f us/insert (%.2fx at %zux history) | recovered "
                "identical: %s\n",
                dur.ingest_rows, dur.journal_off_s, dur.journal_on_s,
                dur.journal_overhead_pct, dur.recovery_records,
                dur.recovery_s, dur.recovery_records_per_s / 1e3,
                dur.publish_small_us, dur.publish_large_us,
                dur.publish_flat_ratio, dur.publish_history,
                dur.recovered_identical ? "yes" : "NO");
  }

  std::FILE* f = std::fopen(out_path, "w");
  if (!f) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"hardware_threads\": %u,\n"
               "  \"scenarios\": \"%s\",\n"
               "  \"encode\": {\n"
               "    \"frames\": %zu,\n"
               "    \"reference_fps\": %.2f,\n"
               "    \"serial_pruned_fps\": %.2f,\n"
               "    \"parallel_fps\": %.2f,\n"
               "    \"serial_speedup\": %.3f,\n"
               "    \"parallel_speedup\": %.3f,\n"
               "    \"bit_identical\": %s\n"
               "  },\n"
               "  \"full_search\": {\n"
               "    \"reference_candidates_per_s\": %.0f,\n"
               "    \"pruned_candidates_per_s\": %.0f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"identical\": %s\n"
               "  },\n"
               "  \"dct_sad_kernels\": {\n"
               "    \"active_arch\": \"%s\",\n"
               "    \"simd_available\": %s,\n"
               "    \"fdct_scalar_mblocks_s\": %.3f,\n"
               "    \"fdct_simd_mblocks_s\": %.3f,\n"
               "    \"fdct_speedup\": %.3f,\n"
               "    \"idct_scalar_mblocks_s\": %.3f,\n"
               "    \"idct_simd_mblocks_s\": %.3f,\n"
               "    \"idct_speedup\": %.3f,\n"
               "    \"sad_scalar_mpix_s\": %.1f,\n"
               "    \"sad_simd_mpix_s\": %.1f,\n"
               "    \"sad_speedup\": %.3f,\n"
               "    \"quant_scalar_mblocks_s\": %.3f,\n"
               "    \"quant_simd_mblocks_s\": %.3f,\n"
               "    \"quant_speedup\": %.3f,\n"
               "    \"identical\": %s,\n"
               "    \"arches\": [",
               hw, g_scenarios.empty() ? "all" : g_scenarios.c_str(),
               enc.frames, enc.reference_fps, enc.serial_fps,
               enc.parallel_fps, Ratio(enc.serial_fps, enc.reference_fps),
               Ratio(enc.parallel_fps, enc.reference_fps),
               enc.bit_identical ? "true" : "false", mot.reference_cand_per_s,
               mot.pruned_cand_per_s,
               Ratio(mot.pruned_cand_per_s, mot.reference_cand_per_s),
               mot.identical ? "true" : "false", kernels.active_arch,
               kernels.simd_available ? "true" : "false",
               kernels.fdct_scalar_mblocks_s, kernels.fdct_simd_mblocks_s,
               kernels.fdct_speedup, kernels.idct_scalar_mblocks_s,
               kernels.idct_simd_mblocks_s, kernels.idct_speedup,
               kernels.sad_scalar_mpix_s, kernels.sad_simd_mpix_s,
               kernels.sad_speedup, kernels.quant_scalar_mblocks_s,
               kernels.quant_simd_mblocks_s, kernels.quant_speedup,
               kernels.identical ? "true" : "false");
  for (std::size_t i = 0; i < kernels.arches.size(); ++i) {
    const auto& col = kernels.arches[i];
    std::fprintf(f,
                 "%s\n      {\"arch\": \"%s\", "
                 "\"fdct_mblocks_s\": %.3f, \"fdct_speedup\": %.3f, "
                 "\"idct_mblocks_s\": %.3f, \"idct_speedup\": %.3f, "
                 "\"sad_mpix_s\": %.1f, \"sad_speedup\": %.3f, "
                 "\"quant_mblocks_s\": %.3f, \"quant_speedup\": %.3f, "
                 "\"identical\": %s}",
                 i == 0 ? "" : ",", col.arch, col.fdct_mblocks_s,
                 col.fdct_speedup, col.idct_mblocks_s, col.idct_speedup,
                 col.sad_mpix_s, col.sad_speedup, col.quant_mblocks_s,
                 col.quant_speedup, col.identical ? "true" : "false");
  }
  std::fprintf(f,
               "%s    ]\n"
               "  },\n"
               "  \"gemm_1024x288x64\": {\n"
               "    \"naive_gflops\": %.3f,\n"
               "    \"blocked_gflops\": %.3f,\n"
               "    \"speedup\": %.3f\n"
               "  },\n"
               "  \"backbone_forward_3x96x96\": {\n"
               "    \"ms\": %.3f,\n"
               "    \"gflops\": %.3f\n"
               "  },\n"
               "  \"multi_session\": {\n"
               "    \"sessions\": %zu,\n"
               "    \"frames_total\": %zu,\n"
               "    \"aggregate_fps\": %.2f,\n"
               "    \"stages\": [",
               kernels.arches.empty() ? "" : "\n",
               gemm.naive_gflops, gemm.blocked_gflops,
               Ratio(gemm.blocked_gflops, gemm.naive_gflops),
               conv.forward_ms, conv.gflops, multi.sessions,
               multi.frames_total, multi.aggregate_fps);
  for (std::size_t i = 0; i < multi.stages.size(); ++i) {
    const auto& stage = multi.stages[i];
    std::fprintf(f,
                 "%s\n      {\"name\": \"%s\", \"in\": %zu, \"out\": %zu, "
                 "\"busy_seconds\": %.4f}",
                 i == 0 ? "" : ",", stage.name.c_str(), stage.in, stage.out,
                 stage.busy_seconds);
  }
  std::fprintf(f,
               "\n    ]\n"
               "  },\n"
               "  \"nn_placement\": {\n"
               "    \"layer_count\": %zu,\n"
               "    \"plans\": [",
               placement.layer_count);
  for (std::size_t i = 0; i < placement.rows.size(); ++i) {
    const auto& row = placement.rows[i];
    std::fprintf(f,
                 "%s\n      {\"mode\": \"%s\", \"split\": %zu, "
                 "\"frames\": %zu, \"iframes\": %zu, "
                 "\"wall_seconds\": %.4f, \"latency_ms_per_frame\": %.3f, "
                 "\"predicted_total_ms\": %.3f, \"wan_bytes\": %llu}",
                 i == 0 ? "" : ",", row.mode, row.split, row.frames,
                 row.iframes, row.wall_seconds, row.latency_ms_per_frame,
                 row.predicted_total_ms,
                 static_cast<unsigned long long>(row.wan_bytes));
  }
  std::fprintf(f,
               "\n    ]\n"
               "  },\n"
               "  \"live_query\": {\n"
               "    \"sessions\": %zu,\n"
               "    \"frames_total\": %zu,\n"
               "    \"queries\": %zu,\n"
               "    \"avg_query_micros\": %.3f,\n"
               "    \"p99_query_micros\": %.3f,\n"
               "    \"max_query_micros\": %.3f,\n"
               "    \"index_updates\": %llu,\n"
               "    \"updates_per_s\": %.2f,\n"
               "    \"subscription_events\": %zu,\n"
               "    \"hits_final\": %zu\n"
               "  },\n"
               "  \"wan_chaos\": {\n"
               "    \"reconciled\": %s,\n"
               "    \"outage_replans\": %llu,\n"
               "    \"outage_dropped\": %zu,\n"
               "    \"loss5_p99_frame_ms\": %.3f,\n"
               "    \"loss_sweep\": [",
               live.sessions, live.frames_total, live.queries,
               live.avg_query_micros, live.p99_query_micros,
               live.max_query_micros,
               static_cast<unsigned long long>(live.index_updates),
               live.updates_per_s, live.subscription_events,
               live.hits_final, chaos.reconciled ? "true" : "false",
               static_cast<unsigned long long>(chaos.outage_replans),
               chaos.outage_dropped,
               chaos.rows.size() > 2 ? chaos.rows[2].p99_frame_ms : 0.0);
  for (std::size_t i = 0; i < chaos.rows.size(); ++i) {
    const auto& row = chaos.rows[i];
    std::fprintf(f,
                 "%s\n      {\"loss\": %.2f, \"frames\": %zu, "
                 "\"delivered\": %zu, \"dropped\": %zu, \"retries\": %llu, "
                 "\"aggregate_fps\": %.2f, \"p99_frame_ms\": %.3f}",
                 i == 0 ? "" : ",", row.loss, row.frames, row.delivered,
                 row.dropped, static_cast<unsigned long long>(row.retries),
                 row.aggregate_fps, row.p99_frame_ms);
  }
  std::fprintf(f,
               "\n    ]\n"
               "  },\n"
               "  \"fleet_scale\": {\n"
               "    \"bit_identical\": %s,\n"
               "    \"speedup_at_max\": %.3f,\n"
               "    \"batched_fps_at_max\": %.2f,\n"
               "    \"batched_p99_at_max_ms\": %.3f,\n"
               "    \"sweep\": [",
               fleet.bit_identical ? "true" : "false", fleet.speedup_at_max,
               fleet.batched_fps_at_max, fleet.batched_p99_at_max_ms);
  for (std::size_t i = 0; i < fleet.rows.size(); ++i) {
    const auto& row = fleet.rows[i];
    std::fprintf(f,
                 "%s\n      {\"sessions\": %zu, \"frames_total\": %zu, "
                 "\"unbatched_fps\": %.2f, \"batched_fps\": %.2f, "
                 "\"speedup\": %.3f, \"unbatched_p99_ms\": %.3f, "
                 "\"batched_p99_ms\": %.3f, \"batches\": %llu, "
                 "\"occupancy_avg\": %.2f, \"bit_identical\": %s}",
                 i == 0 ? "" : ",", row.sessions, row.frames_total,
                 row.unbatched_fps, row.batched_fps,
                 Ratio(row.batched_fps, row.unbatched_fps),
                 row.unbatched_p99_ms, row.batched_p99_ms,
                 static_cast<unsigned long long>(row.batches),
                 row.occupancy_avg, row.bit_identical ? "true" : "false");
  }
  std::fprintf(f,
               "\n    ]\n"
               "  },\n"
               "  \"int8_inference\": {\n"
               "    \"fp32_forward_ms\": %.3f,\n"
               "    \"int8_forward_ms\": %.3f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"frames\": %zu,\n"
               "    \"decidable_frames\": %zu,\n"
               "    \"agreement_raw\": %.4f,\n"
               "    \"agreement_decidable\": %.4f,\n"
               "    \"worst_flip_margin\": %.4f,\n"
               "    \"noise_floor\": 0.02,\n"
               "    \"agreement_ok\": %s\n"
               "  },\n"
               "  \"pipelined_encode\": {\n"
               "    \"frames\": %zu,\n"
               "    \"parallel_fps\": %.2f,\n"
               "    \"pipelined_fps\": %.2f,\n"
               "    \"speedup\": %.3f,\n"
               "    \"multicore\": %s,\n"
               "    \"bit_identical\": %s\n"
               "  },\n"
               "  \"trace_overhead\": {\n"
               "    \"frames\": %zu,\n"
               "    \"untraced_s\": %.4f,\n"
               "    \"traced_s\": %.4f,\n"
               "    \"overhead_pct\": %.3f,\n"
               "    \"events\": %llu,\n"
               "    \"dropped_events\": %llu,\n"
               "    \"bit_identical\": %s\n"
               "  },\n"
               "  \"durability\": {\n"
               "    \"ingest_rows\": %zu,\n"
               "    \"journal_off_s\": %.4f,\n"
               "    \"journal_on_s\": %.4f,\n"
               "    \"journal_overhead_pct\": %.3f,\n"
               "    \"recovery_records\": %zu,\n"
               "    \"recovery_s\": %.4f,\n"
               "    \"recovery_records_per_s\": %.0f,\n"
               "    \"recovered_identical\": %s,\n"
               "    \"publish_history\": %zu,\n"
               "    \"publish_small_us\": %.4f,\n"
               "    \"publish_large_us\": %.4f,\n"
               "    \"publish_flat_ratio\": %.3f\n"
               "  }\n"
               "}\n",
               int8.fp32_forward_ms, int8.int8_forward_ms, int8.speedup,
               int8.frames, int8.decidable, int8.agreement_raw,
               int8.agreement_decidable, int8.worst_flip_margin,
               int8.agreement_ok ? "true" : "false", piped.frames,
               piped.parallel_fps, piped.pipelined_fps, piped.speedup,
               piped.multicore ? "true" : "false",
               piped.bit_identical ? "true" : "false", trace.frames,
               trace.untraced_s, trace.traced_s, trace.overhead_pct,
               static_cast<unsigned long long>(trace.events),
               static_cast<unsigned long long>(trace.dropped_events),
               trace.bit_identical ? "true" : "false", dur.ingest_rows,
               dur.journal_off_s, dur.journal_on_s, dur.journal_overhead_pct,
               dur.recovery_records, dur.recovery_s,
               dur.recovery_records_per_s,
               dur.recovered_identical ? "true" : "false",
               dur.publish_history, dur.publish_small_us,
               dur.publish_large_us, dur.publish_flat_ratio);
  std::fclose(f);
  std::printf("wrote %s\n", out_path);
  if (g_scenario_failed.load(std::memory_order_relaxed)) {
    std::fprintf(stderr,
                 "one or more scenarios failed; report is partial (zeros)\n");
    return 1;
  }
  return 0;
}
