#include "workload_cache.h"

#include <cstdio>
#include <sstream>

#include "common/bytes.h"

namespace sieve::bench {

std::string SerializeWorkloads(const std::vector<core::VideoWorkload>& ws) {
  std::ostringstream os;
  os << "# name w h fps total tuned_gop tuned_sc sem_if sem_bytes sem_if_bytes "
        "def_bytes def_if uniform mse still\n";
  for (const auto& w : ws) {
    os << w.name << " " << w.width << " " << w.height << " " << w.fps << " "
       << w.total_frames << " " << w.tuned.gop_size << " " << w.tuned.scenecut
       << " " << w.semantic_iframes << " " << w.semantic_bytes << " "
       << w.semantic_iframe_payload << " " << w.default_bytes << " "
       << w.default_iframes << " " << w.uniform_selected << " "
       << w.mse_selected << " " << w.still_bytes << "\n";
  }
  return os.str();
}

std::vector<core::VideoWorkload> ParseWorkloads(const std::string& text) {
  std::vector<core::VideoWorkload> out;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    core::VideoWorkload w;
    if (!(fields >> w.name >> w.width >> w.height >> w.fps >> w.total_frames >>
          w.tuned.gop_size >> w.tuned.scenecut >> w.semantic_iframes >>
          w.semantic_bytes >> w.semantic_iframe_payload >> w.default_bytes >>
          w.default_iframes >> w.uniform_selected >> w.mse_selected >>
          w.still_bytes)) {
      return {};
    }
    out.push_back(std::move(w));
  }
  return out;
}

std::vector<core::VideoWorkload> LoadOrBuildWorkloads(
    const std::string& cache_path) {
  if (auto bytes = ReadFileBytes(cache_path); bytes.ok()) {
    const std::string text(bytes->begin(), bytes->end());
    auto ws = ParseWorkloads(text);
    if (ws.size() == std::size_t(synth::kNumDatasets)) {
      std::fprintf(stderr, "[workloads] loaded %zu from %s\n", ws.size(),
                   cache_path.c_str());
      return ws;
    }
  }
  std::vector<core::VideoWorkload> ws;
  for (const auto& spec : synth::AllDatasetSpecs()) {
    std::fprintf(stderr, "[workloads] building %s...\n", spec.name.c_str());
    core::WorkloadOptions options;
    auto w = core::BuildWorkload(spec.id, options);
    if (!w.ok()) {
      std::fprintf(stderr, "[workloads] FAILED: %s\n",
                   w.status().ToString().c_str());
      return {};
    }
    ws.push_back(std::move(*w));
  }
  const std::string text = SerializeWorkloads(ws);
  (void)WriteFileBytes(cache_path,
                       std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()));
  return ws;
}

}  // namespace sieve::bench
