// Ablation: GOP-size sweep at a fixed scenecut.
//
// GOP bounds the worst-case label staleness: small GOPs oversample static
// stretches (good accuracy insurance, poor filtering); huge GOPs rely
// entirely on scenecut. The tuned values in the paper (500/100/1000) track
// each feed's event frequency — this sweep shows why.
#include <cstdio>

#include "codec/analysis.h"
#include "core/metrics.h"
#include "synth/datasets.h"

int main() {
  using namespace sieve;
  std::printf("SiEVE ablation — GOP sweep (scenecut fixed at 250)\n");

  for (auto id : {synth::DatasetId::kCoralReef, synth::DatasetId::kVenice}) {
    const auto& spec = synth::GetDatasetSpec(id);
    synth::SceneConfig cfg = synth::MakeDatasetConfig(id, 2400, 6);
    const double s = 400.0 / cfg.width;
    if (s < 1.0) {
      cfg.width = (int(cfg.width * s) / 2) * 2;
      cfg.height = (int(cfg.height * s) / 2) * 2;
    }
    const auto scene = synth::GenerateScene(cfg);
    const auto costs = codec::AnalyzeVideo(scene.video);

    std::printf("\n%s (events=%zu, %.1f events/min):\n", spec.name.c_str(),
                scene.truth.Events().size(),
                double(scene.truth.Events().size()) /
                    (double(cfg.num_frames) / cfg.fps / 60.0));
    std::printf("%8s %10s %10s %10s %10s\n", "gop", "iframes", "acc", "filter",
                "F1");
    for (int gop : {30, 100, 250, 500, 1000, 5000, 100000}) {
      const auto keyframes =
          codec::PlaceKeyframes(costs, codec::KeyframeParams{gop, 250, 2});
      const auto q = core::EvaluateKeyframes(scene.truth, keyframes);
      std::size_t n = 0;
      for (bool k : keyframes) n += k;
      std::printf("%8d %10zu %10.4f %10.4f %10.4f\n", gop, n, q.accuracy,
                  q.filtering_rate, q.f1);
    }
  }
  return 0;
}
