// Codec micro-benchmarks (google-benchmark): the building-block costs whose
// asymmetry produces the paper's 100x speedup — container walking vs
// entropy+MC+IDCT decode — plus transform and entropy-coder throughput.
#include <benchmark/benchmark.h>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "codec/range_coder.h"
#include "codec/transform.h"
#include "common/rng.h"
#include "core/seeker.h"
#include "synth/scene.h"

namespace {

using namespace sieve;

const synth::SyntheticVideo& Scene() {
  static const synth::SyntheticVideo scene = [] {
    synth::SceneConfig c;
    c.width = 320;
    c.height = 240;
    c.num_frames = 120;
    c.seed = 9;
    c.mean_gap_seconds = 1.0;
    c.min_gap_seconds = 0.4;
    c.mean_dwell_seconds = 1.5;
    return synth::GenerateScene(c);
  }();
  return scene;
}

const codec::EncodedVideo& Encoded() {
  static const codec::EncodedVideo video = [] {
    auto encoded = codec::VideoEncoder(codec::EncoderParams::Semantic(30, 250))
                       .Encode(Scene().video);
    return std::move(*encoded);
  }();
  return video;
}

void BM_SeekIFrames(benchmark::State& state) {
  const auto& encoded = Encoded();
  for (auto _ : state) {
    auto report = core::SeekIFrames(encoded.bytes);
    benchmark::DoNotOptimize(report);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(Encoded().records.size()));
  state.SetLabel("frames/sec = items/sec");
}
BENCHMARK(BM_SeekIFrames);

void BM_DecodeFullStream(benchmark::State& state) {
  const auto& encoded = Encoded();
  for (auto _ : state) {
    auto decoder = codec::VideoDecoder::Open(encoded.bytes);
    auto all = decoder->DecodeAll();
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(Encoded().records.size()));
}
BENCHMARK(BM_DecodeFullStream)->Unit(benchmark::kMillisecond);

void BM_DecodeSingleIFrame(benchmark::State& state) {
  const auto& encoded = Encoded();
  const codec::FrameRecord& first = encoded.records.front();
  for (auto _ : state) {
    auto frame = codec::DecodeIntraFrameAt(encoded.bytes, first);
    benchmark::DoNotOptimize(frame);
  }
}
BENCHMARK(BM_DecodeSingleIFrame)->Unit(benchmark::kMillisecond);

void BM_EncodeVideo(benchmark::State& state) {
  codec::EncoderParams params = codec::EncoderParams::Semantic(30, 250);
  for (auto _ : state) {
    auto encoded = codec::VideoEncoder(params).Encode(Scene().video);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(Scene().video.frames.size()));
}
BENCHMARK(BM_EncodeVideo)->Unit(benchmark::kMillisecond);

void BM_ForwardDct8x8(benchmark::State& state) {
  Rng rng(1);
  codec::PixelBlock block;
  for (auto& v : block) v = std::int16_t(rng.UniformInt(-128, 127));
  std::array<float, codec::kBlockPixels> freq;
  for (auto _ : state) {
    codec::ForwardDct(block, freq);
    benchmark::DoNotOptimize(freq);
  }
}
BENCHMARK(BM_ForwardDct8x8);

void BM_RangeCoderBits(benchmark::State& state) {
  Rng rng(2);
  std::vector<int> bits(8192);
  for (auto& b : bits) b = rng.Chance(0.2);
  for (auto _ : state) {
    ByteWriter w;
    codec::RangeEncoder enc(&w);
    codec::BitModel model;
    for (int b : bits) enc.EncodeBit(model, b);
    enc.Flush();
    benchmark::DoNotOptimize(w);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(bits.size()));
}
BENCHMARK(BM_RangeCoderBits);

void BM_AnalyzeFrameCosts(benchmark::State& state) {
  for (auto _ : state) {
    auto costs = codec::AnalyzeVideo(Scene().video);
    benchmark::DoNotOptimize(costs);
  }
  state.SetItemsProcessed(std::int64_t(state.iterations()) *
                          std::int64_t(Scene().video.frames.size()));
}
BENCHMARK(BM_AnalyzeFrameCosts)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
