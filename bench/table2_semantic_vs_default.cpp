// Table II: tuned semantic encoder parameters vs the default parameters
// (GOP 250, scenecut 40) in terms of accuracy (Acc), sample size (SS), and
// F1, on the three labelled datasets.
//
// Paper values for reference (shape targets, not absolutes):
//   Jackson sq.  semantic 98.3% / 2.1% / 98.1   default 72.6% / 0.72% / 83.9
//   Coral reef   semantic 99.1% / 2.8% / 98.16  default 67.8% / 0.75% / 80.7
//   Venice       semantic 96.5% / 1.1% / 97.6   default 83.8% / 0.4%  / 91
// Expected shape: semantic beats default on Acc and F1 everywhere, with a
// modestly larger sample size.
#include <cstdio>

#include "codec/analysis.h"
#include "core/metrics.h"
#include "core/tuner.h"
#include "synth/datasets.h"

namespace {

using namespace sieve;

void RunDataset(synth::DatasetId id, std::size_t frames, int max_width) {
  const auto& spec = synth::GetDatasetSpec(id);
  synth::SceneConfig train_cfg = synth::MakeDatasetConfig(id, frames, 2);
  if (train_cfg.width > max_width) {
    const double s = double(max_width) / train_cfg.width;
    train_cfg.width = (int(train_cfg.width * s) / 2) * 2;
    train_cfg.height = (int(train_cfg.height * s) / 2) * 2;
  }
  synth::SceneConfig test_cfg = train_cfg;
  test_cfg.seed += 7777;

  const auto train = synth::GenerateScene(train_cfg);
  const auto test = synth::GenerateScene(test_cfg);
  const auto train_costs = codec::AnalyzeVideo(train.video);
  const auto test_costs = codec::AnalyzeVideo(test.video);

  // Offline tuning on the training half (Section IV / Figure 2).
  const core::TuningResult tuned =
      core::TuneFromCosts(train_costs, train.truth, core::TunerGrid::Extended());

  // Evaluate both configurations on the held-out half.
  const auto semantic_keyframes = codec::PlaceKeyframes(
      test_costs,
      codec::KeyframeParams{tuned.best.gop_size, tuned.best.scenecut, 2});
  const auto default_keyframes =
      codec::PlaceKeyframes(test_costs, codec::KeyframeParams{250, 40, 2});
  const auto semantic = core::EvaluateKeyframes(test.truth, semantic_keyframes);
  const auto fallback = core::EvaluateKeyframes(test.truth, default_keyframes);

  std::printf("%-14s | gop=%-5d sc=%-3d | %6.1f%% %6.2f%% %6.2f | %6.1f%% %6.2f%% %6.2f\n",
              spec.name.c_str(), tuned.best.gop_size, tuned.best.scenecut,
              semantic.accuracy * 100, semantic.sample_rate * 100,
              semantic.f1 * 100, fallback.accuracy * 100,
              fallback.sample_rate * 100, fallback.f1 * 100);
}

}  // namespace

int main() {
  std::printf("SiEVE reproduction — Table II: semantic vs default encoding "
              "parameters\n");
  std::printf("%-14s | tuned params       | semantic: Acc  SS     F1    | "
              "default: Acc  SS     F1\n",
              "dataset");
  RunDataset(synth::DatasetId::kJacksonSquare, 2400, 480);
  RunDataset(synth::DatasetId::kCoralReef, 2400, 640);
  RunDataset(synth::DatasetId::kVenice, 3600, 640);
  return 0;
}
