// Figure 3: per-frame object-detection accuracy vs percentage of sampled
// frames, for SiEVE / SIFT / MSE on the labelled datasets (Jackson square,
// Coral reef; Venice summarized in text, included here as a third block).
//
// Protocol (Section V-A): for each dataset, the first half of the footage
// tunes SiEVE's (GOP, scenecut) grid; each grid cell yields one operating
// point (sampling %, accuracy) on the evaluation half. The baselines'
// thresholds are then calibrated to match each SiEVE sampling rate, and
// accuracy is compared at equal sampling budgets.
//
// Geometry is downscaled from the native resolutions (object scale is
// relative, so event/motion structure is preserved); durations are scaled
// from the paper's 4h+4h to minutes. Shape targets: SiEVE dominates both
// baselines per dataset; SIFT > MSE on the close-up Jackson feed; MSE >
// SIFT on the small-object Coral/Venice feeds.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "codec/analysis.h"
#include "core/detectors.h"
#include "core/metrics.h"
#include "core/tuner.h"
#include "synth/datasets.h"
#include "vision/similarity.h"

namespace {

using namespace sieve;

struct OperatingPoint {
  double sampling_pct;
  double acc_sieve;
  double acc_sift;
  double acc_mse;
};

void RunDataset(synth::DatasetId id, std::size_t frames, int max_width) {
  const auto& spec = synth::GetDatasetSpec(id);
  synth::SceneConfig train_cfg = synth::MakeDatasetConfig(id, frames, 1);
  // Downscale geometry, preserving aspect and relative object scale.
  if (train_cfg.width > max_width) {
    const double s = double(max_width) / train_cfg.width;
    train_cfg.width = (int(train_cfg.width * s) / 2) * 2;
    train_cfg.height = (int(train_cfg.height * s) / 2) * 2;
  }
  synth::SceneConfig test_cfg = train_cfg;
  test_cfg.seed += 7777;  // unseen future traffic from the same camera

  const auto train = synth::GenerateScene(train_cfg);
  const auto test = synth::GenerateScene(test_cfg);
  const auto train_costs = codec::AnalyzeVideo(train.video);
  const auto test_costs = codec::AnalyzeVideo(test.video);

  std::fprintf(stderr, "[fig3] %s: train events=%zu test events=%zu\n",
               spec.name.c_str(), train.truth.Events().size(),
               test.truth.Events().size());

  // Baseline change signals on the evaluation half.
  const auto mse_signal = vision::MseChangeSignal(test.video.frames);
  vision::SiftParams sift_params;
  sift_params.max_octaves = 3;
  sift_params.max_keypoints = 250;
  const auto sift_signal = vision::SiftChangeSignal(test.video.frames, sift_params);

  // SiEVE operating points: sweep the tuner grid, dedupe by sampling rate.
  core::TunerGrid grid = core::TunerGrid::Extended();
  grid.gop_sizes = {100, 250, 500, 1000, 5000};
  std::map<int, OperatingPoint> points;  // key: rounded per-mille sampling
  for (int gop : grid.gop_sizes) {
    for (int sc : grid.scenecuts) {
      const codec::KeyframeParams params{gop, sc, 2};
      const core::Selection sieve = core::SelectSieve(test_costs, params);
      const auto q = core::EvaluateSelection(test.truth, sieve.frames);
      const double pct = q.sample_rate * 100.0;
      if (pct < 0.2 || pct > 4.0) continue;  // the paper's 0.5%-3.5% band
      const int key = int(pct * 10.0);
      if (points.contains(key)) continue;

      const core::Selection mse = core::SelectBySignal(
          core::DetectorKind::kMse, mse_signal, sieve.frames.size());
      const core::Selection sift = core::SelectBySignal(
          core::DetectorKind::kSift, sift_signal, sieve.frames.size());
      OperatingPoint op;
      op.sampling_pct = pct;
      op.acc_sieve = q.accuracy;
      op.acc_mse = core::EvaluateSelection(test.truth, mse.frames).accuracy;
      op.acc_sift = core::EvaluateSelection(test.truth, sift.frames).accuracy;
      points[key] = op;
    }
  }

  std::printf("\n=== Figure 3: %s (%s, scaled to %dx%d, %zu eval frames) ===\n",
              spec.name.c_str(), spec.description.c_str(), test_cfg.width,
              test_cfg.height, test.truth.frame_count());
  std::printf("%-12s %-10s %-10s %-10s\n", "sampled_%", "SiEVE", "SIFT", "MSE");
  double sum_sieve = 0, sum_sift = 0, sum_mse = 0;
  for (const auto& [key, op] : points) {
    std::printf("%-12.2f %-10.4f %-10.4f %-10.4f\n", op.sampling_pct,
                op.acc_sieve, op.acc_sift, op.acc_mse);
    sum_sieve += op.acc_sieve;
    sum_sift += op.acc_sift;
    sum_mse += op.acc_mse;
  }
  if (!points.empty()) {
    const double n = double(points.size());
    std::printf("mean         %-10.4f %-10.4f %-10.4f   "
                "(SiEVE - SIFT = %+.1f%%, SiEVE - MSE = %+.1f%%)\n",
                sum_sieve / n, sum_sift / n, sum_mse / n,
                (sum_sieve - sum_sift) / n * 100.0,
                (sum_sieve - sum_mse) / n * 100.0);
  }
  (void)train_costs;
}

}  // namespace

int main() {
  std::printf("SiEVE reproduction — Figure 3: accuracy at matched sampling "
              "rates (SiEVE vs SIFT vs MSE)\n");
  RunDataset(synth::DatasetId::kJacksonSquare, 1500, 480);
  RunDataset(synth::DatasetId::kCoralReef, 1500, 480);
  RunDataset(synth::DatasetId::kVenice, 1800, 480);
  return 0;
}
