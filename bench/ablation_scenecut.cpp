// Ablation: scenecut threshold sweep at a fixed (large) GOP.
//
// Shows the accuracy/filtering tradeoff the tuner navigates: low scenecut
// misses events (high filtering, low accuracy); high scenecut oversamples
// (high accuracy, low filtering); F1 peaks in between — Figure 2's
// "oversampling / best configuration / missed events" trichotomy.
#include <cstdio>

#include "codec/analysis.h"
#include "core/metrics.h"
#include "synth/datasets.h"

int main() {
  using namespace sieve;
  std::printf("SiEVE ablation — scenecut sweep (GOP fixed at 100000)\n");

  for (auto id : {synth::DatasetId::kJacksonSquare, synth::DatasetId::kVenice}) {
    const auto& spec = synth::GetDatasetSpec(id);
    synth::SceneConfig cfg = synth::MakeDatasetConfig(id, 1800, 5);
    const double s = 400.0 / cfg.width;
    if (s < 1.0) {
      cfg.width = (int(cfg.width * s) / 2) * 2;
      cfg.height = (int(cfg.height * s) / 2) * 2;
    }
    const auto scene = synth::GenerateScene(cfg);
    const auto costs = codec::AnalyzeVideo(scene.video);

    std::printf("\n%s (events=%zu):\n", spec.name.c_str(),
                scene.truth.Events().size());
    std::printf("%8s %10s %10s %10s %10s\n", "scenecut", "iframes", "acc",
                "filter", "F1");
    for (int sc : {0, 40, 100, 150, 200, 250, 300, 350, 400}) {
      const auto keyframes =
          codec::PlaceKeyframes(costs, codec::KeyframeParams{100000, sc, 2});
      const auto q = core::EvaluateKeyframes(scene.truth, keyframes);
      std::size_t n = 0;
      for (bool k : keyframes) n += k;
      std::printf("%8d %10zu %10.4f %10.4f %10.4f\n", sc, n, q.accuracy,
                  q.filtering_rate, q.f1);
    }
  }
  return 0;
}
