// Ablation: Neurosurgeon-style NN partitioning (the paper's NN Deployment
// service, option (2): split layers between edge and cloud).
//
// Profiles the reference backbone's real per-layer latencies on this
// machine, then evaluates every split point under several link conditions.
// Shows when all-edge, all-cloud, or a middle cut wins.
#include <cstdio>

#include "nn/network.h"
#include "nn/partition.h"

int main() {
  using namespace sieve;
  std::printf("SiEVE ablation — NN partitioning across edge and cloud\n");

  nn::Network net = nn::MakeBackbone(96, 64, 0x51E5E);
  auto profile = net.ProfileLayers(3);
  std::printf("%-24s %12s %14s %12s\n", "layer", "ms (edge)", "activation B",
              "cum ms");
  double cum = 0;
  for (const auto& entry : profile) {
    cum += entry.measured_ms;
    std::printf("%-24s %12.3f %14zu %12.3f\n", entry.name.c_str(),
                entry.measured_ms, entry.output_bytes, cum);
  }

  const std::size_t input_bytes = 3u * 96u * 96u * 4u;
  for (double mbps : {1.0, 10.0, 30.0, 1000.0}) {
    nn::PartitionInput input;
    input.profile = profile;
    input.cloud_speedup = 3.0;
    input.bandwidth_mbps = mbps;
    input.rtt_ms = 20.0;
    input.input_bytes = input_bytes;
    const auto points = nn::EvaluateSplits(input);
    const auto best = nn::ChooseSplit(input);
    std::printf("\nlink %.0f Mbps: best split = %zu/%zu (edge %.2fms + xfer "
                "%.2fms + cloud %.2fms = %.2fms)\n",
                mbps, best.split, profile.size(), best.edge_ms,
                best.transfer_ms, best.cloud_ms, best.total_ms);
    std::printf("  split: ");
    for (const auto& p : points) std::printf("%zu:%.1fms ", p.split, p.total_ms);
    std::printf("\n");
  }
  return 0;
}
