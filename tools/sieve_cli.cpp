// sieve — command-line front end for the library.
//
// Subcommands:
//   synth  <out.y4m> [frames] [WxH] [seed]      generate a labelled test feed
//   tune   <in.y4m> <labels.txt>                Section-IV grid search
//   encode <in.y4m> <out.svb> [gop] [scenecut] [qp]
//   info   <in.svb>                             container + frame-type summary
//   seek   <in.svb>                             list I-frames (metadata only)
//   decode <in.svb> <out.y4m>                   full decode
//   extract <in.svb> <frame> <out.ppm>          random-access I-frame decode
//   store  <dir>                                recover a results-store dir
//                                               (repairs torn tails,
//                                               quarantines corruption) and
//                                               print its recovery report
//
// The labels file for `tune` has one integer label-set bitmask per line
// (0 = empty scene), matching the video's frame count — the format
// `synth` writes next to its output.
//
// A global `--trace-out=PATH` flag (before the subcommand) records a Chrome
// trace of the run — encode-pass spans and all — and writes it to PATH on
// exit; load it in chrome://tracing (docs/observability.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "common/bytes.h"
#include "core/seeker.h"
#include "core/tuner.h"
#include "media/pnm.h"
#include "media/y4m.h"
#include "obs/export.h"
#include "store/recovery.h"
#include "synth/scene.h"

namespace {

using namespace sieve;

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int CmdSynth(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: sieve synth <out.y4m> [frames] [WxH] [seed]\n");
    return 2;
  }
  synth::SceneConfig config;
  config.width = 320;
  config.height = 240;
  config.num_frames = argc >= 2 ? std::strtoul(argv[1], nullptr, 10) : 600;
  if (argc >= 3) std::sscanf(argv[2], "%dx%d", &config.width, &config.height);
  config.seed = argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 1;
  config.classes = {synth::ObjectClass::kCar, synth::ObjectClass::kPerson};
  config.mean_gap_seconds = 3.0;
  config.mean_dwell_seconds = 3.0;

  const synth::SyntheticVideo scene = synth::GenerateScene(config);
  if (auto s = media::WriteY4m(argv[0], scene.video); !s.ok()) return Fail(s);

  // Labels sidecar: <out>.labels.txt with one bitmask per frame.
  const std::string labels_path = std::string(argv[0]) + ".labels.txt";
  std::string text;
  for (std::size_t f = 0; f < scene.truth.frame_count(); ++f) {
    text += std::to_string(int(scene.truth.label(f).bits()));
    text += '\n';
  }
  if (auto s = WriteFileBytes(
          labels_path, std::span<const std::uint8_t>(
                           reinterpret_cast<const std::uint8_t*>(text.data()),
                           text.size()));
      !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu frames to %s (+ %s), %zu events\n",
              scene.video.frames.size(), argv[0], labels_path.c_str(),
              scene.truth.Events().size());
  return 0;
}

Expected<synth::GroundTruth> ReadLabels(const std::string& path) {
  auto bytes = ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();
  std::vector<synth::LabelSet> labels;
  int value = 0;
  bool in_number = false;
  for (std::uint8_t b : *bytes) {
    if (b >= '0' && b <= '9') {
      value = value * 10 + (b - '0');
      in_number = true;
    } else if (in_number) {
      labels.push_back(synth::LabelSet(std::uint8_t(value)));
      value = 0;
      in_number = false;
    }
  }
  if (in_number) labels.push_back(synth::LabelSet(std::uint8_t(value)));
  return synth::GroundTruth(std::move(labels));
}

int CmdTune(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: sieve tune <in.y4m> <labels.txt>\n");
    return 2;
  }
  auto video = media::ReadY4m(argv[0]);
  if (!video.ok()) return Fail(video.status());
  auto truth = ReadLabels(argv[1]);
  if (!truth.ok()) return Fail(truth.status());
  if (truth->frame_count() != video->frames.size()) {
    std::fprintf(stderr, "error: %zu labels for %zu frames\n",
                 truth->frame_count(), video->frames.size());
    return 1;
  }
  const core::TuningResult tuned =
      core::TuneEncoder(*video, *truth, core::TunerGrid::Extended());
  std::printf("%-8s %-9s %-8s %-8s %-8s\n", "gop", "scenecut", "acc%", "SS%",
              "F1%");
  for (const auto& c : tuned.all) {
    std::printf("%-8d %-9d %-8.2f %-8.2f %-8.2f%s\n", c.gop_size, c.scenecut,
                c.quality.accuracy * 100, c.quality.sample_rate * 100,
                c.quality.f1 * 100,
                (c.gop_size == tuned.best.gop_size &&
                 c.scenecut == tuned.best.scenecut)
                    ? "   <-- best"
                    : "");
  }
  std::printf("\nbest: --gop %d --scenecut %d\n", tuned.best.gop_size,
              tuned.best.scenecut);
  return 0;
}

int CmdEncode(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sieve encode <in.y4m> <out.svb> [gop] [scenecut] [qp]\n");
    return 2;
  }
  auto video = media::ReadY4m(argv[0]);
  if (!video.ok()) return Fail(video.status());
  codec::EncoderParams params;
  if (argc >= 3) params.keyframe.gop_size = std::atoi(argv[2]);
  if (argc >= 4) params.keyframe.scenecut = std::atoi(argv[3]);
  if (argc >= 5) params.qp = std::atoi(argv[4]);
  auto encoded = codec::VideoEncoder(params).Encode(*video);
  if (!encoded.ok()) return Fail(encoded.status());
  if (auto s = WriteFileBytes(argv[1], encoded->bytes); !s.ok()) return Fail(s);
  std::printf("%zu frames -> %zu bytes (%.3f bpp), %zu I-frames (%.2f%%)\n",
              encoded->records.size(), encoded->bytes.size(),
              8.0 * double(encoded->bytes.size()) /
                  (double(video->width) * video->height *
                   double(video->frames.size())),
              encoded->IntraFrameCount(), encoded->IntraFrameRate() * 100);
  return 0;
}

int CmdInfo(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: sieve info <in.svb>\n");
    return 2;
  }
  auto bytes = ReadFileBytes(argv[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto header = codec::ReadContainerHeader(*bytes);
  if (!header.ok()) return Fail(header.status());
  auto records = codec::WalkFrameIndex(*bytes);
  if (!records.ok()) return Fail(records.status());
  std::size_t iframes = 0, ibytes = 0, pbytes = 0;
  for (const auto& r : *records) {
    if (r.type == codec::FrameType::kIntra) {
      ++iframes;
      ibytes += r.payload_size;
    } else {
      pbytes += r.payload_size;
    }
  }
  std::printf("%dx%d @ %.3f fps, qp %u, %zu frames (%.1fs)\n", header->width,
              header->height, header->fps, header->qp, records->size(),
              double(records->size()) / header->fps);
  std::printf("I-frames: %zu (%.2f%%), %zu bytes; P-frames: %zu, %zu bytes\n",
              iframes, 100.0 * double(iframes) / double(records->size()),
              ibytes, records->size() - iframes, pbytes);
  return 0;
}

int CmdSeek(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: sieve seek <in.svb>\n");
    return 2;
  }
  auto bytes = ReadFileBytes(argv[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto report = core::SeekIFrames(*bytes);
  if (!report.ok()) return Fail(report.status());
  std::printf("# frame offset size\n");
  for (const auto& r : report->iframes) {
    std::printf("%u %zu %zu\n", r.index, r.payload_offset, r.payload_size);
  }
  std::fprintf(stderr, "%zu I-frames of %zu frames; scanned %zu of %zu bytes\n",
               report->iframes.size(), report->total_frames,
               report->bytes_scanned, bytes->size());
  return 0;
}

int CmdDecode(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: sieve decode <in.svb> <out.y4m>\n");
    return 2;
  }
  auto bytes = ReadFileBytes(argv[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto decoder = codec::VideoDecoder::Open(*bytes);
  if (!decoder.ok()) return Fail(decoder.status());
  auto video = decoder->DecodeAll();
  if (!video.ok()) return Fail(video.status());
  if (auto s = media::WriteY4m(argv[1], *video); !s.ok()) return Fail(s);
  std::printf("decoded %zu frames to %s\n", video->frames.size(), argv[1]);
  return 0;
}

int CmdExtract(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: sieve extract <in.svb> <frame> <out.ppm>\n");
    return 2;
  }
  auto bytes = ReadFileBytes(argv[0]);
  if (!bytes.ok()) return Fail(bytes.status());
  auto records = codec::WalkFrameIndex(*bytes);
  if (!records.ok()) return Fail(records.status());
  const std::size_t index = std::strtoul(argv[1], nullptr, 10);
  if (index >= records->size()) {
    std::fprintf(stderr, "error: frame %zu out of range (%zu frames)\n", index,
                 records->size());
    return 1;
  }
  auto frame = codec::DecodeIntraFrameAt(*bytes, (*records)[index]);
  if (!frame.ok()) return Fail(frame.status());
  if (auto s = media::WritePpm(argv[2], *frame); !s.ok()) return Fail(s);
  std::printf("wrote frame %zu to %s\n", index, argv[2]);
  return 0;
}

int CmdStore(int argc, char** argv) {
  if (argc < 1) {
    std::fprintf(stderr, "usage: sieve store <dir>\n");
    return 2;
  }
  auto report = store::RecoverStore(argv[0]);
  if (!report.ok()) return Fail(report.status());
  std::printf("%zu journal file(s): %zu records, %zu torn tail(s) trimmed, "
              "%zu quarantined, %zu unreadable\n",
              report->files, report->records, report->truncated_tails,
              report->quarantined, report->unreadable);
  if (!report->cameras.empty()) {
    std::printf("%-24s %-16s %-8s %-8s %-10s %s\n", "route", "camera", "rows",
                "sealed", "highwater", "notes");
  }
  for (const auto& cam : report->cameras) {
    std::string notes;
    if (cam.tail_truncated) notes += "torn-tail ";
    if (cam.quarantined) notes += "quarantined ";
    if (notes.empty()) notes = "-";
    std::printf("%-24s %-16s %-8zu %-8s %-10llu %s\n", cam.route.c_str(),
                cam.camera_id.c_str(), cam.inserts.size(),
                cam.sealed ? "yes" : "no",
                static_cast<unsigned long long>(cam.high_water),
                notes.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_out;
  if (argc >= 2 && std::strncmp(argv[1], "--trace-out=", 12) == 0) {
    trace_out = argv[1] + 12;
    --argc;
    ++argv;
  }
  if (argc < 2) {
    std::fprintf(stderr,
                 "sieve — semantic video encoding toolkit\n"
                 "usage: sieve [--trace-out=trace.json] <command> ...\n"
                 "commands: synth tune encode info seek decode extract "
                 "store\n");
    return 2;
  }
  if (!trace_out.empty()) sieve::obs::StartTracing();
  const std::string cmd = argv[1];
  argc -= 2;
  argv += 2;
  int rc = 2;
  if (cmd == "synth") rc = CmdSynth(argc, argv);
  else if (cmd == "tune") rc = CmdTune(argc, argv);
  else if (cmd == "encode") rc = CmdEncode(argc, argv);
  else if (cmd == "info") rc = CmdInfo(argc, argv);
  else if (cmd == "seek") rc = CmdSeek(argc, argv);
  else if (cmd == "decode") rc = CmdDecode(argc, argv);
  else if (cmd == "extract") rc = CmdExtract(argc, argv);
  else if (cmd == "store") rc = CmdStore(argc, argv);
  else std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  if (!trace_out.empty()) {
    sieve::obs::StopTracing();
    if (auto s = sieve::obs::WriteChromeTrace(trace_out); !s.ok()) {
      return Fail(s);
    }
    std::fprintf(stderr, "trace written to %s\n", trace_out.c_str());
  }
  return rc;
}
