#!/usr/bin/env bash
# Build (Release, -O2) and run the hot-path perf harness with its fixed seed,
# writing BENCH_hotpaths.json at the repo root. Usage:
#
#   tools/run_bench.sh [build_dir] [output_json]
#
# The harness is deterministic in the work it performs; timings obviously
# depend on the machine, which is why every speedup in the JSON is measured
# against a baseline run in the same process. Scenarios: encode (reference /
# serial / parallel), full-search motion, GEMM, backbone forward, and
# multi_session (3 concurrent camera sessions on one shared runtime
# executor — the fan-in scaling number to watch across PRs).
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_hotpaths.json}"

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target perf_hotpaths -j "$(nproc)"

"$build_dir/perf_hotpaths" "$out_json"
echo "benchmark report: $out_json"
