#!/usr/bin/env bash
# Build (Release, -O2) and run the hot-path perf harness with its fixed seed,
# writing BENCH_hotpaths.json at the repo root. Usage:
#
#   tools/run_bench.sh [--trace[=trace.json]] [build_dir] [output_json] [scenarios]
#
# `scenarios` is a comma-separated filter (default: everything), e.g.
#   tools/run_bench.sh build BENCH_placement.json nn_placement,multi_session
# A filtered run writes zeros for the skipped sections, so when no explicit
# output path is given it lands in BENCH_hotpaths.filtered.json instead of
# the tracked BENCH_hotpaths.json.
#
# `--trace` makes the trace_overhead scenario write its traced leg's Chrome
# trace (default BENCH_trace.json at the repo root; override with
# --trace=path). Load it in chrome://tracing or Perfetto — per-frame spans
# from encode passes through WAN retries to the db inserts
# (docs/observability.md).
#
# The harness is deterministic in the work it performs; timings obviously
# depend on the machine, which is why every speedup in the JSON is measured
# against a baseline run in the same process. Scenarios: encode (reference /
# serial / parallel), motion (full-search), gemm, conv (backbone forward),
# multi_session (3 concurrent camera sessions on one shared runtime
# executor — the fan-in scaling number to watch across PRs),
# nn_placement (all-edge / all-cloud / auto-split session placement:
# end-to-end latency + WAN still/activation bytes per plan),
# live_query (3 streaming cameras with a reader thread hammering the
# cross-camera query index: FindObject avg/p99 latency under ingest + index
# update throughput), dct_sad_kernels (scalar vs SIMD A/B of the
# dispatch-layer DCT/IDCT/quant/SAD kernels — every supported table, sse2
# AND avx2, each bit-equality-checked against scalar), wan_chaos
# (delivered-frame latency + ledger reconciliation under scripted loss),
# fleet_scale (batched vs unbatched cloud inference across a 8/32/64-session
# sweep, with per-camera bit-equality checks), int8_inference (int8 vs fp32
# backbone forward latency + the top-1 agreement contract over a labelled
# scene), pipelined_encode (frame-level pipelining on vs off at the same
# parallelism, with a byte-equality check on the bitstreams), and
# trace_overhead (the observability contract: trace recorder on vs off over
# one encode+serve workload — CPU overhead must stay under 2% and the
# outputs byte-identical).
#
# Gate a fresh report against the committed baseline with
#   python3 tools/check_bench.py BENCH_hotpaths.json fresh.json
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"

trace_json=""
if [[ "${1:-}" == --trace ]]; then
  trace_json="$repo_root/BENCH_trace.json"
  shift
elif [[ "${1:-}" == --trace=* ]]; then
  trace_json="${1#--trace=}"
  shift
fi

build_dir="${1:-$repo_root/build}"
out_json="${2:-$repo_root/BENCH_hotpaths.json}"
scenarios="${3:-}"

# A filtered run zeroes the unselected sections; never let it clobber the
# tracked trajectory file unless the caller named that path explicitly.
if [[ -n "$scenarios" && -z "${2:-}" ]]; then
  out_json="$repo_root/BENCH_hotpaths.filtered.json"
  echo "scenario filter active: writing $out_json (tracked JSON untouched)"
fi

cmake -B "$build_dir" -S "$repo_root" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build_dir" --target perf_hotpaths -j "$(nproc)"

# Run into a temp file and move into place only on success: a failed or
# crashed harness (it exits nonzero when any scenario fails) must never
# replace the tracked trajectory JSON with a partial/zeroed report.
tmp_json="$(mktemp "${out_json}.XXXXXX")"
trap 'rm -f "$tmp_json"' EXIT
if ! "$build_dir/perf_hotpaths" "$tmp_json" 0 "$scenarios" "$trace_json"; then
  echo "perf_hotpaths failed; keeping existing $out_json" >&2
  exit 1
fi
mv "$tmp_json" "$out_json"
trap - EXIT
echo "benchmark report: $out_json"
if [[ -n "$trace_json" ]]; then
  echo "chrome trace: $trace_json (load in chrome://tracing)"
fi
