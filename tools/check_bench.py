#!/usr/bin/env python3
"""Gate a fresh BENCH_hotpaths.json against the committed baseline.

Usage: tools/check_bench.py BASELINE FRESH [--threshold 0.15]

Fails (exit 1) on a >threshold regression in the tracked scenarios:

  * full_search   — candidate-throughput speedup of the pruned search
  * gemm          — blocked-vs-naive GFLOP/s speedup
  * encode        — serial and parallel fps speedups over the reference coder
  * live_query    — p99 FindObject latency under ingest (lower better;
                    p99-by-rank is the honest, stable number — avg is
                    tail-polluted and max is a one-off warmup artifact)
  * dct_sad_kernels — SIMD-vs-scalar speedups of the kernel layer, plus a
                    per-arch check that the avx2 table is not slower than
                    the sse2 table when both ran (a wider table that loses
                    to the narrower one means a broken kernel or dispatch)
  * fleet_scale   — batched-vs-unbatched serving at the largest fleet, plus
                    a hard-fail bit_identical boolean (batching must never
                    change a prediction)
  * int8_inference — int8-vs-fp32 backbone speedup, plus a hard-fail
                    agreement_ok boolean (the quantization contract:
                    >= 99% top-1 agreement on decidable frames and every
                    flip below the noise floor — see docs/perf.md)
  * pipelined_encode — pipelined-vs-plain encode speedup (skipped on
                    single-core runners, where there is nothing to overlap
                    with) plus a hard-fail bit_identical boolean
  * trace_overhead — the observability contract: tracing on must cost < 2%
                    CPU over tracing off (absolute gate, no baseline, no
                    noise band — the scenario medians paired legs to stay
                    below measurement noise) and must not change one byte
                    of bitstream or db (hard-fail bit_identical)
  * durability    — the crash-safety contract: journaling every insert must
                    cost < 5% CPU on the session ingest path (absolute
                    gate, median of paired legs), per-insert snapshot
                    publication must stay flat as a camera's interval
                    history grows 100x (absolute < 3x gate — the index is
                    O(1) per insert by design), 100k-record boot recovery
                    throughput must not collapse (baseline ratio, wide
                    band), and replaying journals must reproduce the live
                    run's query snapshot exactly (hard-fail
                    recovered_identical)

Ratio metrics (speedups) are machine-normalized — both legs run in the same
process on the same box — so they are comparable between the committed
baseline and a CI runner. Metrics belonging to a scenario that either
report filtered out (per its "scenarios" field — skipped sections are
written as zeros, so key presence proves nothing), and metrics whose
baseline is missing or zero, are skipped with a note. Correctness booleans
(bit_identical / identical) must be true wherever the fresh report actually
ran the scenario.
"""

import argparse
import json
import sys


def get(d, path):
    for key in path.split("."):
        if not isinstance(d, dict) or key not in d:
            return None
        d = d[key]
    return d


# JSON section -> harness scenario that populates it. A scenario-filtered
# run writes zeros/false into the skipped sections, so presence of a key
# does not mean the scenario ran — the report's "scenarios" field does.
SCENARIO_OF = {
    "full_search": "motion",
    "gemm_1024x288x64": "gemm",
    "encode": "encode",
    "live_query": "live_query",
    "dct_sad_kernels": "dct_sad_kernels",
    "wan_chaos": "wan_chaos",
    "fleet_scale": "fleet_scale",
    "int8_inference": "int8_inference",
    "pipelined_encode": "pipelined_encode",
    "trace_overhead": "trace_overhead",
    "durability": "durability",
}


def scenario_ran(report, path):
    scenarios = report.get("scenarios")
    if scenarios in (None, "", "all"):
        return True
    return SCENARIO_OF[path.split(".")[0]] in scenarios.split(",")


# (json path, lower_is_better, noise_multiplier)
#
# The multiplier widens the threshold for metrics that are noisy run-to-run
# or sensitive to which machine generated the committed baseline:
#  * encode speedups — each leg runs ~0.25s post-SIMD, so the ratio wobbles
#    ~20% on a loaded box;
#  * live_query p99 — the one ABSOLUTE metric in the gate (the ratios are
#    same-process and machine-normalized; a latency has no in-run
#    reference). CI runners differ from the baseline box, so at 20x the
#    gate only fires when fresh p99 exceeds 4x baseline — beyond plausible
#    runner-hardware spread for a CPU-bound sub-microsecond read, while
#    the regressions that matter (per-query snapshot copying, scan creep
#    on the interval lists) are 10x+ and still caught. p99-by-rank is
#    gated, not the tail-polluted avg or the warmup-artifact max;
#  * kernel A/B speedups — the SIMD-vs-scalar advantage swings across CPU
#    generations and compilers; a real regression (SIMD accidentally
#    disabled) drops the ratio to ~1.0, far beyond the widened band.
# The multi-second same-process ratios (full_search, gemm) keep the tight
# 15% gate.
METRICS = [
    ("full_search.speedup", False, 1.0),
    ("gemm_1024x288x64.speedup", False, 1.0),
    ("encode.serial_speedup", False, 2.0),
    ("encode.parallel_speedup", False, 2.0),
    ("live_query.p99_query_micros", True, 20.0),
    # Absolute latency like live_query p99 (no in-run reference), measured
    # over a small delivered-frame sample on whatever box runs CI — the
    # widest band: only a transport-level blowup (a retry path that sleeps
    # real time, a lock held across the WAN hop) moves it 4x.
    ("wan_chaos.loss5_p99_frame_ms", True, 20.0),
    ("dct_sad_kernels.fdct_speedup", False, 2.0),
    ("dct_sad_kernels.idct_speedup", False, 2.0),
    ("dct_sad_kernels.sad_speedup", False, 2.0),
    # Batched-vs-unbatched fleet serving. The speedup is same-process and
    # machine-normalized, but each leg is a full 64-session pipeline run
    # whose inference share of wall time varies with core count — on a
    # 1-core box the ratio hovers near 1.0 while multi-core runners see the
    # batcher's amortization. Gate only a collapse (batching made serving
    # dramatically slower), not the exact ratio.
    ("fleet_scale.speedup_at_max", False, 2.0),
    # Aggregate batched fps / worst-camera p99 at the largest fleet:
    # absolute numbers with no in-run reference, so the widest band — they
    # fire only on a serving-path catastrophe (batcher serializing the
    # fleet, a deadline that sleeps real time per frame).
    ("fleet_scale.batched_fps_at_max", False, 4.0),
    ("fleet_scale.batched_p99_at_max_ms", True, 20.0),
    # Int8-vs-fp32 backbone forward: same-process and machine-normalized,
    # but the int8 advantage shifts with the SIMD tier the runner's CPU
    # offers (AVX2 u8s8 dot vs scalar accumulate), so the widened band —
    # a real regression (quantized path silently falling back to fp32)
    # drops the ratio to ~1.0, far outside it.
    ("int8_inference.speedup", False, 2.0),
    # Pipelined-vs-plain encode. Same-process ratio, but the overlap
    # dividend only exists with >= 2 cores; main() skips this metric
    # entirely on single-core runners (fresh hardware_threads < 2), where
    # the honest value hovers at 1.0 regardless of code health.
    ("pipelined_encode.speedup", False, 2.0),
    # 100k-record boot recovery throughput: an absolute rate with no in-run
    # reference (journal decode + replay into the index, wall time), so the
    # widest band — it fires only when recovery stops being linear (a
    # re-scan per record, an fsync on the read path), a 10x+ collapse.
    ("durability.recovery_records_per_s", False, 20.0),
]

# Fresh-report metrics gated only on capable hardware: metric path ->
# minimum hardware_threads the fresh runner needs for the number to mean
# anything.
MIN_THREADS_OF = {
    "pipelined_encode.speedup": 2,
}

BOOLEANS = [
    "encode.bit_identical",
    "full_search.identical",
    "dct_sad_kernels.identical",
    # Every chaos leg's delivered-or-dropped ledger must balance — a false
    # here means the transport silently lost a frame under load.
    "wan_chaos.reconciled",
    # Hard gate: batched cloud inference must be bit-identical to the
    # per-frame path for every camera at every fleet size. A false here is
    # a correctness bug in ForwardSuffixBatch or the batcher's routing, not
    # noise — no band, no skip.
    "fleet_scale.bit_identical",
    # Hard gate: the int8 quantization contract (>= 99% top-1 agreement on
    # decidable frames, every flip below the noise floor, raw agreement
    # >= 90%). A false is a broken scale/zero-point or a drifted backbone,
    # not noise.
    "int8_inference.agreement_ok",
    # Hard gate: the pipelined encoder must produce byte-identical
    # bitstreams to the non-pipelined path (core or not — bit-equality
    # holds everywhere even when the speedup doesn't).
    "pipelined_encode.bit_identical",
    # Hard gate: enabling the trace recorder must not change one byte of
    # bitstream or db output. A false is an observer effect (a probe
    # feeding back into encode decisions or frame routing), not noise.
    "trace_overhead.bit_identical",
    # Hard gate: replaying a store of journals must rebuild the exact query
    # snapshot the live run produced — same routes, seals, and per-class
    # intervals. A false is lost or reordered durability data, not noise.
    "durability.recovered_identical",
]

# The trace recorder's overhead contract (docs/observability.md): enabling
# tracing costs < this much CPU on the bench's encode+serve workload. An
# ABSOLUTE ceiling on the fresh report — no baseline ratio, no noise band;
# the harness medians interleaved order-balanced paired legs specifically
# so this number sits well below the gate when the recorder is healthy.
TRACE_OVERHEAD_LIMIT_PCT = 2.0


def check_trace_overhead(fresh, failures):
    pct = get(fresh, "trace_overhead.overhead_pct")
    events = get(fresh, "trace_overhead.events")
    if pct is None or not isinstance(pct, (int, float)):
        failures.append("trace_overhead.overhead_pct: missing in fresh report")
        print(f"{'trace_overhead.overhead_pct':44s} {'<2.0%':>10s} "
              f"{'MISSING':>10s}   FAIL")
        return
    mark = "ok" if pct < TRACE_OVERHEAD_LIMIT_PCT else "FAIL"
    print(f"{'trace_overhead.overhead_pct':44s} {'<2.0%':>10s} "
          f"{pct:9.2f}%   {mark}")
    if mark == "FAIL":
        failures.append(
            f"trace_overhead.overhead_pct: {pct:.2f}% >= "
            f"{TRACE_OVERHEAD_LIMIT_PCT:.1f}% (tracing must stay cheap)")
    # A recorder that silently stopped recording would ace the gate — the
    # scenario must actually have captured events for the number to count.
    if not events:
        failures.append("trace_overhead.events: traced leg recorded nothing")
        print(f"{'trace_overhead.events':44s} {'>0':>10s} "
              f"{str(events):>10s}   FAIL")


# The durability contract (docs/durability.md): journaling every insert at
# the default group-commit cadence must cost < this much CPU on the session
# ingest path, and per-insert snapshot publication must stay within this
# factor when a camera's interval history grows 100x (1k -> 100k). Both are
# ABSOLUTE ceilings on the fresh report, like the trace gate: the harness
# medians interleaved paired legs so healthy numbers sit far below them
# (overhead ~1%, flat ratio ~1.0; the pre-sharding index was ~100x).
JOURNAL_OVERHEAD_LIMIT_PCT = 5.0
PUBLISH_FLAT_LIMIT = 3.0


def check_durability(fresh, failures):
    pct = get(fresh, "durability.journal_overhead_pct")
    if pct is None or not isinstance(pct, (int, float)):
        failures.append(
            "durability.journal_overhead_pct: missing in fresh report")
        print(f"{'durability.journal_overhead_pct':44s} {'<5.0%':>10s} "
              f"{'MISSING':>10s}   FAIL")
    else:
        mark = "ok" if pct < JOURNAL_OVERHEAD_LIMIT_PCT else "FAIL"
        print(f"{'durability.journal_overhead_pct':44s} {'<5.0%':>10s} "
              f"{pct:9.2f}%   {mark}")
        if mark == "FAIL":
            failures.append(
                f"durability.journal_overhead_pct: {pct:.2f}% >= "
                f"{JOURNAL_OVERHEAD_LIMIT_PCT:.1f}% (journaling must stay "
                f"cheap on the ingest path)")
    ratio = get(fresh, "durability.publish_flat_ratio")
    if ratio is None or not isinstance(ratio, (int, float)) or ratio <= 0:
        failures.append("durability.publish_flat_ratio: missing/zero in "
                        "fresh report")
        print(f"{'durability.publish_flat_ratio':44s} {'<3.0x':>10s} "
              f"{'MISSING':>10s}   FAIL")
    else:
        mark = "ok" if ratio < PUBLISH_FLAT_LIMIT else "FAIL"
        print(f"{'durability.publish_flat_ratio':44s} {'<3.0x':>10s} "
              f"{ratio:9.2f}x   {mark}")
        if mark == "FAIL":
            failures.append(
                f"durability.publish_flat_ratio: {ratio:.2f}x >= "
                f"{PUBLISH_FLAT_LIMIT:.1f}x (publication must not scale "
                f"with history)")
    # A recovery that read nothing would ace every gate — the scenario must
    # actually have decoded records for its numbers to count.
    records = get(fresh, "durability.recovery_records")
    if not records:
        failures.append("durability.recovery_records: recovery read nothing")
        print(f"{'durability.recovery_records':44s} {'>0':>10s} "
              f"{str(records):>10s}   FAIL")


def check_kernel_arches(fresh, failures):
    """The per-arch kernel columns: every measured arch must be bit-equal
    to scalar, and when both sse2 and avx2 ran, the avx2 table must not
    lose to sse2 on the DCT (a wider table slower than the narrower one
    means a broken kernel or a dispatch mix-up, not noise — 10% band for
    run-to-run wobble)."""
    arches = {col.get("arch"): col
              for col in get(fresh, "dct_sad_kernels.arches") or []}
    for name, col in arches.items():
        if col.get("identical") is not True:
            failures.append(f"dct_sad_kernels.arches[{name}].identical: "
                            f"expected true, got {col.get('identical')!r}")
    if "sse2" in arches and "avx2" in arches:
        sse2 = arches["sse2"].get("fdct_mblocks_s") or 0
        avx2 = arches["avx2"].get("fdct_mblocks_s") or 0
        mark = "ok" if avx2 >= 0.9 * sse2 else "FAIL"
        print(f"{'dct_sad_kernels avx2-vs-sse2 fdct':44s} "
              f"{sse2:10.3f} {avx2:10.3f}   {mark}")
        if mark == "FAIL":
            failures.append(
                f"dct_sad_kernels: avx2 fdct ({avx2:.3f} Mblk/s) slower "
                f"than sse2 ({sse2:.3f} Mblk/s)")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed BENCH_hotpaths.json")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="allowed fractional regression (default 0.15)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.fresh) as f:
        fresh = json.load(f)

    failures = []
    print(f"{'metric':44s} {'baseline':>10s} {'fresh':>10s} {'delta':>8s}")
    for path, lower_better, noise in METRICS:
        if not scenario_ran(baseline, path) or not scenario_ran(fresh, path):
            print(f"{path:44s} {'-':>10s} {'-':>10s}   skipped (filtered run)")
            continue
        min_threads = MIN_THREADS_OF.get(path)
        if min_threads and fresh.get("hardware_threads", 0) < min_threads:
            print(f"{path:44s} {'-':>10s} {'-':>10s}   skipped "
                  f"(needs >= {min_threads} hardware threads)")
            continue
        base = get(baseline, path)
        new = get(fresh, path)
        if base is None or not isinstance(base, (int, float)) or base <= 0:
            print(f"{path:44s} {'-':>10s} {'-':>10s}   skipped (no baseline)")
            continue
        if new is None or not isinstance(new, (int, float)) or new <= 0:
            failures.append(f"{path}: missing/zero in fresh report "
                            f"(baseline {base:.3f})")
            print(f"{path:44s} {base:10.3f} {'MISSING':>10s}   FAIL")
            continue
        threshold = args.threshold * noise
        delta = (new - base) / base
        if lower_better:
            regressed = delta > threshold
        else:
            regressed = delta < -threshold
        mark = "FAIL" if regressed else "ok"
        print(f"{path:44s} {base:10.3f} {new:10.3f} {delta:+7.1%} {mark}")
        if regressed:
            failures.append(
                f"{path}: {base:.3f} -> {new:.3f} ({delta:+.1%}, "
                f"threshold {threshold:.0%})")

    for path in BOOLEANS:
        if not scenario_ran(fresh, path):
            print(f"{path:44s} {'-':>10s} {'-':>10s}   skipped (filtered run)")
            continue
        # The fresh report always comes from the current harness, so a
        # missing correctness boolean is a gate-disabling bug, not an
        # old-format report — fail loudly rather than skip silently.
        new = get(fresh, path)
        if new is not True:
            failures.append(f"{path}: expected true, got {new!r}")
            print(f"{path:44s} {'true':>10s} {str(new):>10s}   FAIL")
        else:
            print(f"{path:44s} {'true':>10s} {'true':>10s}   ok")

    if scenario_ran(fresh, "dct_sad_kernels.arches"):
        check_kernel_arches(fresh, failures)

    if scenario_ran(fresh, "trace_overhead.overhead_pct"):
        check_trace_overhead(fresh, failures)

    if scenario_ran(fresh, "durability.journal_overhead_pct"):
        check_durability(fresh, failures)

    if failures:
        print(f"\n{len(failures)} regression(s) beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\nno regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
