// Quickstart: the SiEVE loop in ~60 lines.
//
//  1. Generate a small surveillance-style video (cars entering and leaving).
//  2. Tune the semantic encoder on labelled history.
//  3. Encode future video with the tuned parameters.
//  4. Seek I-frames in the compressed stream (no decoding).
//  5. Decode only those I-frames and report the detected events.
//
// Run:  ./quickstart
#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/metrics.h"
#include "core/seeker.h"
#include "core/tuner.h"
#include "synth/scene.h"

int main() {
  using namespace sieve;

  // 1. A 40-second, 240x160 feed with cars crossing a fixed camera.
  synth::SceneConfig config;
  config.width = 240;
  config.height = 160;
  config.object_scale = 0.26;
  config.num_frames = 1200;
  config.seed = 42;
  config.classes = {synth::ObjectClass::kCar};
  config.mean_gap_seconds = 4.0;   // events well separated, several of
  config.min_gap_seconds = 2.0;    // them within the 40s history
  config.mean_dwell_seconds = 4.0;
  config.min_dwell_seconds = 2.0;
  const synth::SyntheticVideo history = synth::GenerateScene(config);
  config.seed = 47;  // "tomorrow's" traffic on the same camera
  const synth::SyntheticVideo live = synth::GenerateScene(config);

  // 2. Offline tuning: grid-search (GOP, scenecut) for the best F1.
  const core::TuningResult tuned = core::TuneEncoder(
      history.video, history.truth, core::TunerGrid::Extended());
  std::printf("tuned: GOP=%d scenecut=%d  (train acc=%.1f%%, F1=%.1f%%)\n",
              tuned.best.gop_size, tuned.best.scenecut,
              tuned.best.quality.accuracy * 100, tuned.best.quality.f1 * 100);

  // 3. Semantic encoding of the live feed.
  codec::EncoderParams params;
  params.keyframe.gop_size = tuned.best.gop_size;
  params.keyframe.scenecut = tuned.best.scenecut;
  auto encoded = codec::VideoEncoder(params).Encode(live.video);
  if (!encoded.ok()) {
    std::fprintf(stderr, "encode failed: %s\n",
                 encoded.status().ToString().c_str());
    return 1;
  }
  std::printf("encoded %zu frames -> %.1f KB (%.2f%% I-frames)\n",
              encoded->records.size(), double(encoded->bytes.size()) / 1e3,
              encoded->IntraFrameRate() * 100);

  // 4. Seek I-frames: container metadata only, no pixel is decoded.
  auto report = core::SeekIFrames(encoded->bytes);
  if (!report.ok()) return 1;
  std::printf("seeker: %zu I-frames found touching %zu of %zu bytes\n",
              report->iframes.size(), report->bytes_scanned,
              encoded->bytes.size());

  // 5. Decode only the I-frames; everything else inherits their labels.
  for (const auto& record : report->iframes) {
    auto frame = codec::DecodeIntraFrameAt(encoded->bytes, record);
    if (!frame.ok()) continue;
    std::printf("  I-frame @%u  (t=%.1fs)  truth=%s\n", record.index,
                double(record.index) / config.fps,
                live.truth.label(record.index).ToString().c_str());
  }

  const auto quality = core::EvaluateSelection(
      live.truth, core::SelectedIndices(*report));
  std::printf("propagated per-frame accuracy: %.1f%% with %.2f%% sampled\n",
              quality.accuracy * 100, quality.sample_rate * 100);
  return 0;
}
