// Camera fleet: per-camera tuning across heterogeneous feeds (the reason
// Section IV tunes each camera separately), then the fleet deployed LIVE on
// the multi-camera session API: one runtime::Runtime hosts the shared
// edge/cloud tiers and the shared executor, and every tuned camera streams
// its frames through its own SieveSession concurrently — the Figure 1
// many-cameras -> one-edge -> one-cloud topology as running code.
//
// Run:  ./camera_fleet
#include <cstdio>
#include <memory>
#include <thread>
#include <vector>

#include "codec/analysis.h"
#include "core/metrics.h"
#include "core/tuner.h"
#include "nn/classifier.h"
#include "runtime/runtime.h"
#include "synth/datasets.h"

int main() {
  using namespace sieve;

  struct FleetCamera {
    std::string name;
    synth::SyntheticVideo scene;
    core::TuningResult tuned;
  };
  std::vector<FleetCamera> fleet;

  core::CameraParameterTable table;
  std::printf("%-16s %-10s %-8s %-8s %-8s %-8s\n", "camera", "tuned", "acc%",
              "SS%", "F1%", "events");

  // Every labelled preset plays the role of one camera in the fleet; the
  // close-up camera tunes to a low scenecut, the long-shot to a high one.
  for (auto id : {synth::DatasetId::kJacksonSquare, synth::DatasetId::kCoralReef,
                  synth::DatasetId::kVenice}) {
    const auto& spec = synth::GetDatasetSpec(id);
    synth::SceneConfig cfg = synth::MakeDatasetConfig(id, 1800, 21);
    const double s = 360.0 / cfg.width;
    if (s < 1.0) {
      cfg.width = (int(cfg.width * s) / 2) * 2;
      cfg.height = (int(cfg.height * s) / 2) * 2;
    }
    synth::SyntheticVideo scene = synth::GenerateScene(cfg);
    core::TuningResult tuned = core::TuneEncoder(scene.video, scene.truth,
                                                 core::TunerGrid::Extended());

    codec::KeyframeParams params;
    params.gop_size = tuned.best.gop_size;
    params.scenecut = tuned.best.scenecut;
    table.Set(spec.name, params);

    char tuned_str[32];
    std::snprintf(tuned_str, sizeof tuned_str, "%d/%d", tuned.best.gop_size,
                  tuned.best.scenecut);
    std::printf("%-16s %-10s %-8.1f %-8.2f %-8.1f %zu\n", spec.name.c_str(),
                tuned_str, tuned.best.quality.accuracy * 100,
                tuned.best.quality.sample_rate * 100,
                tuned.best.quality.f1 * 100, scene.truth.Events().size());
    fleet.push_back(FleetCamera{spec.name, std::move(scene), std::move(tuned)});
  }

  std::printf("\noperator lookup table (serialized):\n%s",
              table.Serialize().c_str());

  // Round-trip the table the way the operator software would persist it.
  auto restored = core::CameraParameterTable::Deserialize(table.Serialize());
  std::printf("round-trip: %s (%zu cameras)\n",
              restored.ok() ? "ok" : "FAILED", restored.ok() ? restored->size() : 0);
  if (!restored.ok()) return 1;

  // --- Deploy the tuned fleet on one shared runtime ------------------------
  // One classifier serves every camera (Predict is const-thread-safe); one
  // shared executor runs all three cameras' motion estimation; the edge and
  // cloud tiers are shared by the pipeline's multi-source fan-in.
  nn::ClassifierParams cp;
  cp.input_size = 48;
  cp.embedding_dim = 32;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(fleet[0].scene.video.frames, fleet[0].scene.truth, 10)
           .ok()) {
    std::printf("classifier fit FAILED\n");
    return 1;
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.nn_input_size = 48;
  runtime::Runtime rt(runtime_config, &classifier);

  static constexpr std::size_t kLiveFrames = 150;  // stream the first 5 seconds
  std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
  for (const FleetCamera& cam : fleet) {
    runtime::SessionConfig sc;
    sc.width = cam.scene.video.width;
    sc.height = cam.scene.video.height;
    sc.encoder = codec::EncoderParams::Semantic(cam.tuned.best.gop_size,
                                                cam.tuned.best.scenecut);
    auto session = rt.OpenSession(cam.name, sc);
    if (!session.ok()) {
      std::printf("OpenSession(%s) FAILED: %s\n", cam.name.c_str(),
                  session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(std::move(*session));
  }

  std::vector<std::thread> feeds;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    feeds.emplace_back([i, &fleet, &sessions] {
      const auto& frames = fleet[i].scene.video.frames;
      const std::size_t n = std::min(kLiveFrames, frames.size());
      for (std::size_t f = 0; f < n; ++f) {
        if (!sessions[i]->PushFrame(frames[f]).ok()) return;
      }
    });
  }
  for (auto& t : feeds) t.join();

  std::printf("\nlive fleet on one shared runtime (%zu workers):\n",
              rt.executor().concurrency());
  std::printf("%-16s %-8s %-8s %-8s %-10s %-12s\n", "camera", "frames",
              "iframes", "labels", "fps", "edge->cloud");
  for (auto& session : sessions) {
    const runtime::SessionReport report = session->Drain();
    std::printf("%-16s %-8zu %-8zu %-8zu %-10.1f %llu B\n",
                report.camera_id.c_str(), report.frames_pushed,
                report.iframes_selected, report.labels_written, report.fps,
                static_cast<unsigned long long>(report.edge_to_cloud_bytes));
  }
  auto stats = rt.Shutdown();
  if (!stats.ok()) {
    std::printf("shutdown FAILED: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::printf("shared tiers: ");
  for (const auto& stage : *stats) {
    std::printf("[%s %zu->%zu] ", stage.name.c_str(), stage.in, stage.out);
  }
  std::printf("\n");
  return 0;
}
