// Camera fleet: per-camera tuning across heterogeneous feeds (the reason
// Section IV tunes each camera separately), then the fleet deployed LIVE on
// the multi-camera session API: one runtime::Runtime hosts the shared
// edge/cloud tiers and the shared executor, and every tuned camera streams
// its frames through its own SieveSession concurrently — the Figure 1
// many-cameras -> one-edge -> one-cloud topology as running code.
//
// The final act scales past the tuned trio: `--cameras N` (default 16)
// spins up N synthetic sessions on one runtime with cross-session batched
// cloud inference enabled (docs/fleet.md), so many cameras' activations
// share each ForwardSuffix pass instead of paying it per frame.
//
// Run:  ./camera_fleet [--cameras N] [--trace-out trace.json]
//
// --trace-out records a Chrome trace of the live-fleet act (per-frame spans
// from encode through WAN to the db inserts) and dumps the runtime's metric
// registry next to it as <trace>.metrics.json (docs/observability.md).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "codec/analysis.h"
#include "codec/container.h"
#include "codec/encoder.h"
#include "core/metrics.h"
#include "core/tuner.h"
#include "nn/classifier.h"
#include "obs/export.h"
#include "runtime/runtime.h"
#include "synth/datasets.h"

int main(int argc, char** argv) {
  using namespace sieve;

  int fleet_cameras = 16;
  std::string trace_out;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cameras") == 0 && i + 1 < argc) {
      fleet_cameras = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else {
      std::printf("usage: %s [--cameras N] [--trace-out trace.json]\n",
                  argv[0]);
      return 1;
    }
  }
  if (fleet_cameras < 1) fleet_cameras = 1;

  struct FleetCamera {
    std::string name;
    synth::SyntheticVideo scene;
    core::TuningResult tuned;
  };
  std::vector<FleetCamera> fleet;

  core::CameraParameterTable table;
  std::printf("%-16s %-10s %-8s %-8s %-8s %-8s\n", "camera", "tuned", "acc%",
              "SS%", "F1%", "events");

  // Every labelled preset plays the role of one camera in the fleet; the
  // close-up camera tunes to a low scenecut, the long-shot to a high one.
  for (auto id : {synth::DatasetId::kJacksonSquare, synth::DatasetId::kCoralReef,
                  synth::DatasetId::kVenice}) {
    const auto& spec = synth::GetDatasetSpec(id);
    synth::SceneConfig cfg = synth::MakeDatasetConfig(id, 1800, 21);
    const double s = 360.0 / cfg.width;
    if (s < 1.0) {
      cfg.width = (int(cfg.width * s) / 2) * 2;
      cfg.height = (int(cfg.height * s) / 2) * 2;
    }
    synth::SyntheticVideo scene = synth::GenerateScene(cfg);
    core::TuningResult tuned = core::TuneEncoder(scene.video, scene.truth,
                                                 core::TunerGrid::Extended());

    codec::KeyframeParams params;
    params.gop_size = tuned.best.gop_size;
    params.scenecut = tuned.best.scenecut;
    table.Set(spec.name, params);

    char tuned_str[32];
    std::snprintf(tuned_str, sizeof tuned_str, "%d/%d", tuned.best.gop_size,
                  tuned.best.scenecut);
    std::printf("%-16s %-10s %-8.1f %-8.2f %-8.1f %zu\n", spec.name.c_str(),
                tuned_str, tuned.best.quality.accuracy * 100,
                tuned.best.quality.sample_rate * 100,
                tuned.best.quality.f1 * 100, scene.truth.Events().size());
    fleet.push_back(FleetCamera{spec.name, std::move(scene), std::move(tuned)});
  }

  std::printf("\noperator lookup table (serialized):\n%s",
              table.Serialize().c_str());

  // Round-trip the table the way the operator software would persist it.
  auto restored = core::CameraParameterTable::Deserialize(table.Serialize());
  std::printf("round-trip: %s (%zu cameras)\n",
              restored.ok() ? "ok" : "FAILED", restored.ok() ? restored->size() : 0);
  if (!restored.ok()) return 1;

  // --- Deploy the tuned fleet on one shared runtime ------------------------
  // One classifier serves every camera (Predict is const-thread-safe); one
  // shared executor runs all three cameras' motion estimation; the edge and
  // cloud tiers are shared by the pipeline's multi-source fan-in.
  nn::ClassifierParams cp;
  cp.input_size = 48;
  cp.embedding_dim = 32;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(fleet[0].scene.video.frames, fleet[0].scene.truth, 10)
           .ok()) {
    std::printf("classifier fit FAILED\n");
    return 1;
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.nn_input_size = 48;
  if (!trace_out.empty()) {
    runtime_config.trace.enabled = true;
    runtime_config.trace.chrome_trace_path = trace_out;
    runtime_config.trace.metrics_path = trace_out + ".metrics.json";
  }
  runtime::Runtime rt(runtime_config, &classifier);

  static constexpr std::size_t kLiveFrames = 150;  // stream the first 5 seconds
  std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
  for (const FleetCamera& cam : fleet) {
    runtime::SessionConfig sc;
    sc.width = cam.scene.video.width;
    sc.height = cam.scene.video.height;
    sc.encoder = codec::EncoderParams::Semantic(cam.tuned.best.gop_size,
                                                cam.tuned.best.scenecut);
    auto session = rt.OpenSession(cam.name, sc);
    if (!session.ok()) {
      std::printf("OpenSession(%s) FAILED: %s\n", cam.name.c_str(),
                  session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(std::move(*session));
  }

  std::vector<std::thread> feeds;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    feeds.emplace_back([i, &fleet, &sessions] {
      const auto& frames = fleet[i].scene.video.frames;
      const std::size_t n = std::min(kLiveFrames, frames.size());
      for (std::size_t f = 0; f < n; ++f) {
        if (!sessions[i]->PushFrame(frames[f]).ok()) return;
      }
    });
  }
  for (auto& t : feeds) t.join();

  std::printf("\nlive fleet on one shared runtime (%zu workers):\n",
              rt.executor().concurrency());
  std::printf("%-16s %-8s %-8s %-8s %-10s %-12s\n", "camera", "frames",
              "iframes", "labels", "fps", "edge->cloud");
  for (auto& session : sessions) {
    const runtime::SessionReport report = session->Drain();
    std::printf("%-16s %-8zu %-8zu %-8zu %-10.1f %llu B\n",
                report.camera_id.c_str(), report.frames_pushed,
                report.iframes_selected, report.labels_written, report.fps,
                static_cast<unsigned long long>(report.edge_to_cloud_bytes));
  }
  auto stats = rt.Shutdown();
  if (!stats.ok()) {
    std::printf("shutdown FAILED: %s\n", stats.status().ToString().c_str());
    return 1;
  }
  // Full stage table (queue columns read n/a for sources — they pop their
  // own camera queue; the pipeline connection stats don't apply).
  std::printf("shared tiers:\n%s", obs::FormatStageStats(*stats).c_str());
  if (!trace_out.empty()) {
    std::printf("trace written to %s (+ %s.metrics.json)\n", trace_out.c_str(),
                trace_out.c_str());
  }

  // --- Fleet scale: N cameras sharing batched cloud inference --------------
  // One short scene is encoded once and every synthetic camera replays the
  // wire bytes, so N only scales the serving side: N sessions' split-point
  // activations funnel into one InferenceBatcher, and each flushed batch
  // pays the suffix pass once for up to cloud_batch_max cameras.
  std::printf("\nfleet scale: %d cameras, batched cloud inference\n",
              fleet_cameras);
  synth::SceneConfig scene_cfg;
  scene_cfg.width = 64;
  scene_cfg.height = 48;
  scene_cfg.num_frames = 24;
  scene_cfg.seed = 7;
  const synth::SyntheticVideo fleet_scene = synth::GenerateScene(scene_cfg);
  auto encoded = codec::VideoEncoder(codec::EncoderParams::Semantic(4, 120))
                     .Encode(fleet_scene.video);
  if (!encoded.ok()) {
    std::printf("encode FAILED\n");
    return 1;
  }
  const std::span<const std::uint8_t> wire(encoded->bytes);

  nn::ClassifierParams fleet_cp;
  fleet_cp.input_size = 32;
  fleet_cp.embedding_dim = 16;
  nn::FrameClassifier fleet_classifier(fleet_cp);
  if (!fleet_classifier.Fit(fleet_scene.video.frames, fleet_scene.truth, 4)
           .ok()) {
    std::printf("fleet classifier fit FAILED\n");
    return 1;
  }

  runtime::RuntimeConfig fleet_config;
  fleet_config.nn_input_size = 32;
  fleet_config.cloud_batch_max = 16;
  fleet_config.cloud_batch_deadline_ms = 20.0;
  fleet_config.cloud_batch_fairness_share = 4;
  fleet_config.wan_parallelism = 2;
  fleet_config.cloud_nn_parallelism = 2;
  runtime::Runtime fleet_rt(fleet_config, &fleet_classifier);

  std::vector<std::unique_ptr<runtime::SieveSession>> fleet_sessions;
  for (int cam = 0; cam < fleet_cameras; ++cam) {
    runtime::SessionConfig sc;
    sc.width = scene_cfg.width;
    sc.height = scene_cfg.height;
    sc.encoder = codec::EncoderParams::Semantic(4, 120);
    auto session = fleet_rt.OpenSession("fleet-" + std::to_string(cam), sc);
    if (!session.ok()) {
      std::printf("OpenSession(fleet-%d) FAILED: %s\n", cam,
                  session.status().ToString().c_str());
      return 1;
    }
    fleet_sessions.push_back(std::move(*session));
  }

  std::vector<std::thread> fleet_feeds;
  for (auto& session : fleet_sessions) {
    fleet_feeds.emplace_back([&session, wire, &encoded] {
      for (const auto& record : encoded->records) {
        const auto bytes = wire.subspan(
            record.payload_offset - codec::FrameRecord::kHeaderSize,
            codec::FrameRecord::kHeaderSize + record.payload_size);
        if (!session->PushEncoded(record.type, record.index, bytes).ok())
          return;
      }
    });
  }
  for (auto& t : fleet_feeds) t.join();

  std::size_t delivered = 0, batched = 0;
  for (auto& session : fleet_sessions) {
    const runtime::SessionReport report = session->Drain();
    delivered += report.frames_delivered;
    batched += report.cloud_batched_frames;
  }
  const runtime::RuntimeHealth health = fleet_rt.health();
  std::printf("  delivered %zu frames (%zu via the batcher)\n", delivered,
              batched);
  std::printf("  %llu batched passes, avg occupancy %.1f cameras/pass\n",
              static_cast<unsigned long long>(health.cloud_batches),
              health.cloud_batch_occupancy_avg);
  if (!fleet_rt.Shutdown().ok()) {
    std::printf("fleet shutdown FAILED\n");
    return 1;
  }
  return 0;
}
