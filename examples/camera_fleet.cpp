// Camera fleet: per-camera tuning across heterogeneous feeds (the reason
// Section IV tunes each camera separately), producing the operator's
// parameter lookup table and a per-camera quality report.
//
// Run:  ./camera_fleet
#include <cstdio>

#include "codec/analysis.h"
#include "core/metrics.h"
#include "core/tuner.h"
#include "synth/datasets.h"

int main() {
  using namespace sieve;

  core::CameraParameterTable table;
  std::printf("%-16s %-10s %-8s %-8s %-8s %-8s\n", "camera", "tuned", "acc%",
              "SS%", "F1%", "events");

  // Every labelled preset plays the role of one camera in the fleet; the
  // close-up camera tunes to a low scenecut, the long-shot to a high one.
  for (auto id : {synth::DatasetId::kJacksonSquare, synth::DatasetId::kCoralReef,
                  synth::DatasetId::kVenice}) {
    const auto& spec = synth::GetDatasetSpec(id);
    synth::SceneConfig cfg = synth::MakeDatasetConfig(id, 1800, 21);
    const double s = 360.0 / cfg.width;
    if (s < 1.0) {
      cfg.width = (int(cfg.width * s) / 2) * 2;
      cfg.height = (int(cfg.height * s) / 2) * 2;
    }
    const synth::SyntheticVideo scene = synth::GenerateScene(cfg);
    const core::TuningResult tuned = core::TuneEncoder(
        scene.video, scene.truth, core::TunerGrid::Extended());

    codec::KeyframeParams params;
    params.gop_size = tuned.best.gop_size;
    params.scenecut = tuned.best.scenecut;
    table.Set(spec.name, params);

    char tuned_str[32];
    std::snprintf(tuned_str, sizeof tuned_str, "%d/%d", tuned.best.gop_size,
                  tuned.best.scenecut);
    std::printf("%-16s %-10s %-8.1f %-8.2f %-8.1f %zu\n", spec.name.c_str(),
                tuned_str, tuned.best.quality.accuracy * 100,
                tuned.best.quality.sample_rate * 100,
                tuned.best.quality.f1 * 100, scene.truth.Events().size());
  }

  std::printf("\noperator lookup table (serialized):\n%s",
              table.Serialize().c_str());

  // Round-trip the table the way the operator software would persist it.
  auto restored = core::CameraParameterTable::Deserialize(table.Serialize());
  std::printf("round-trip: %s (%zu cameras)\n",
              restored.ok() ? "ok" : "FAILED", restored.ok() ? restored->size() : 0);
  return restored.ok() ? 0 : 1;
}
