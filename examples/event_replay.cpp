// Event replay: the paper's stored-video use case (Section IV, "Use cases").
//
// The semantically encoded archive sits at the edge. When an analyst asks
// "what happened at t=X?", SiEVE seeks the enclosing GOP via container
// metadata, decodes ONLY that GOP, and runs deeper analysis — here, a
// moving-object tracker that reports each object's path and direction of
// travel. The rest of the archive is never decoded.
//
// Run:  ./event_replay
#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/seeker.h"
#include "synth/scene.h"
#include "track/gop_analysis.h"

int main() {
  using namespace sieve;

  synth::SceneConfig config;
  config.width = 240;
  config.height = 160;
  config.num_frames = 600;
  config.seed = 1234;
  config.classes = {synth::ObjectClass::kCar, synth::ObjectClass::kTruck};
  config.mean_gap_seconds = 2.5;
  config.min_gap_seconds = 1.5;
  config.mean_dwell_seconds = 2.5;
  config.noise_sigma = 0.8;

  std::printf("recording %zu frames to the edge archive...\n", config.num_frames);
  const synth::SyntheticVideo scene = synth::GenerateScene(config);
  auto encoded = codec::VideoEncoder(codec::EncoderParams::Semantic(1000, 300))
                     .Encode(scene.video);
  if (!encoded.ok()) return 1;
  std::printf("archive: %.1f KB, %zu I-frames over %zu frames\n",
              double(encoded->bytes.size()) / 1e3, encoded->IntraFrameCount(),
              encoded->records.size());

  // A quiet I-frame serves as the background reference for the detector.
  auto seek = core::SeekIFrames(encoded->bytes);
  if (!seek.ok()) return 1;
  media::Frame background;
  for (const auto& record : seek->iframes) {
    if (scene.truth.label(record.index).empty()) {
      auto frame = codec::DecodeIntraFrameAt(encoded->bytes, record);
      if (frame.ok()) {
        background = std::move(*frame);
        break;
      }
    }
  }
  if (background.empty()) {
    auto frame = codec::DecodeIntraFrameAt(encoded->bytes, seek->iframes.front());
    if (!frame.ok()) return 1;
    background = std::move(*frame);
  }

  // Replay every occupied event.
  for (const auto& event : scene.truth.Events()) {
    if (event.labels.empty() || event.length() < 30) continue;
    const std::size_t query = (event.start + event.end) / 2;
    auto analysis = track::AnalyzeGopAt(encoded->bytes, query, background);
    if (!analysis.ok()) continue;
    std::printf("\nquery t=%.1fs (truth %s):\n", double(query) / config.fps,
                event.labels.ToString().c_str());
    std::printf("  GOP [%zu, %zu): decoded %zu of %zu archive frames (%.1f%%)\n",
                analysis->gop_start, analysis->gop_end,
                analysis->frames_decoded, encoded->records.size(),
                100.0 * double(analysis->frames_decoded) /
                    double(encoded->records.size()));
    for (const auto& t : analysis->tracks) {
      const double v = t.MeanVelocityX();
      std::printf("  track #%u: frames %zu..%zu, %zu observations, "
                  "moving %s at %.1f px/frame\n",
                  t.id, t.first_frame(), t.last_frame(), t.length(),
                  v >= 0 ? "right" : "left", std::abs(v));
    }
  }
  return 0;
}
