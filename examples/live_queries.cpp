// Live cross-camera queries: the paper's output contract ("when did object
// X appear?") lifted to a streaming fleet. Three cameras push frames
// through one shared runtime while an operator console — this program —
// watches standing queries fire, asks WhereIs mid-stream, and finally runs
// time-aligned FindObject seek-back across all cameras, comparing the live
// index against each drained per-camera database (they match bit-exactly).
//
// Run:  ./live_queries
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "nn/classifier.h"
#include "query/service.h"
#include "runtime/runtime.h"
#include "synth/scene.h"

int main() {
  using namespace sieve;

  constexpr int kCameras = 3;
  constexpr std::size_t kFrames = 150;  // 5 seconds per camera at 30 fps

  std::vector<synth::SyntheticVideo> scenes;
  for (int cam = 0; cam < kCameras; ++cam) {
    synth::SceneConfig cfg;
    cfg.width = 128;
    cfg.height = 96;
    cfg.num_frames = kFrames;
    cfg.seed = 41 + std::uint64_t(cam) * 17;
    cfg.mean_gap_seconds = 0.8;
    cfg.min_gap_seconds = 0.3;
    cfg.mean_dwell_seconds = 1.2;
    cfg.min_dwell_seconds = 0.5;
    scenes.push_back(synth::GenerateScene(cfg));
  }

  nn::ClassifierParams cp;
  cp.input_size = 32;
  cp.embedding_dim = 16;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(scenes[0].video.frames, scenes[0].truth, 8).ok()) {
    std::printf("classifier fit FAILED\n");
    return 1;
  }

  runtime::RuntimeConfig runtime_config;
  runtime_config.nn_input_size = 32;
  runtime::Runtime rt(runtime_config, &classifier);
  query::QueryService& q = rt.query();

  // Standing queries: one subscription per class, printing transitions as
  // the fleet streams (the callbacks run on runtime worker threads).
  std::mutex print_mutex;
  std::atomic<std::size_t> events{0};
  for (int c = 0; c < synth::kNumObjectClasses; ++c) {
    q.Subscribe(synth::ObjectClass(c), [&](const query::QueryEvent& e) {
      events.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(print_mutex);
      std::printf("  [%7.3fs] %-5s %-8s on %s (frame %zu)\n", e.seconds,
                  synth::ObjectClassName(e.cls),
                  e.kind == query::QueryEvent::Kind::kEnter ? "ENTER" : "exit",
                  e.camera_id.c_str(), e.frame);
    });
  }

  std::vector<std::unique_ptr<runtime::SieveSession>> sessions;
  for (int cam = 0; cam < kCameras; ++cam) {
    runtime::SessionConfig sc;
    sc.width = 128;
    sc.height = 96;
    sc.encoder = codec::EncoderParams::Semantic(12, 150);
    auto session = rt.OpenSession("cam-" + std::to_string(cam), sc);
    if (!session.ok()) {
      std::printf("OpenSession FAILED: %s\n",
                  session.status().ToString().c_str());
      return 1;
    }
    sessions.push_back(std::move(*session));
  }

  std::printf("streaming %d cameras; standing queries live:\n", kCameras);
  std::vector<std::thread> feeds;
  for (int cam = 0; cam < kCameras; ++cam) {
    feeds.emplace_back([cam, &sessions, &scenes] {
      for (const auto& frame : scenes[std::size_t(cam)].video.frames) {
        if (!sessions[std::size_t(cam)]->PushFrame(frame).ok()) return;
      }
    });
  }

  // The operator asks "where is a car right now?" a few times mid-stream —
  // reads are wait-free snapshots, never blocking the ingest above.
  for (int probe = 0; probe < 3; ++probe) {
    std::this_thread::sleep_for(std::chrono::milliseconds(120));
    const auto cams = q.WhereIs(synth::ObjectClass::kCar);
    std::lock_guard<std::mutex> lock(print_mutex);
    std::printf("  [probe %d] car on %zu camera(s), index v%llu\n", probe,
                cams.size(), static_cast<unsigned long long>(q.version()));
  }

  for (auto& t : feeds) t.join();
  std::vector<runtime::SessionReport> reports;
  for (auto& session : sessions) reports.push_back(session->Drain());

  // Seek-back across the fleet, time-aligned on the shared stream clock.
  std::printf("\ncross-camera FindObject after drain (%zu events fired):\n",
              events.load());
  std::size_t mismatches = 0;
  for (int c = 0; c < synth::kNumObjectClasses; ++c) {
    const auto cls = synth::ObjectClass(c);
    const auto hits = q.FindObject(cls);
    std::size_t expected = 0;
    for (int cam = 0; cam < kCameras; ++cam) {
      expected += sessions[std::size_t(cam)]
                      ->db()
                      .FindObject(cls, reports[std::size_t(cam)].frames_pushed)
                      .size();
    }
    if (hits.size() != expected) ++mismatches;
    std::printf("  %-7s %zu hit(s)%s\n", synth::ObjectClassName(cls),
                hits.size(), hits.size() == expected ? "" : "  MISMATCH");
    for (const auto& hit : hits) {
      std::printf("    %-7s frames [%zu, %zu)  =  [%.3fs, %.3fs)\n",
                  hit.camera_id.c_str(), hit.begin_frame, hit.end_frame,
                  hit.begin_seconds, hit.end_seconds);
    }
  }
  (void)rt.Shutdown();
  std::printf("live index vs drained databases: %s\n",
              mismatches == 0 ? "match" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
