// NN deployment service demo: decide where the reference NN's layers run.
//
// The paper's deployment service can (1) place the whole network at the
// edge or the cloud, or (2) split it Neurosurgeon-style. This example
// profiles the real backbone, prints the per-layer costs, and shows the
// optimal split under different WAN conditions — then validates that a
// split forward pass produces bit-identical output to a whole one.
//
// Run:  ./nn_partitioning
#include <cstdio>

#include "nn/network.h"
#include "nn/partition.h"

int main() {
  using namespace sieve;

  nn::Network net = nn::MakeBackbone(96, 64, 123);
  std::printf("profiling backbone (%zu layers) on this machine...\n",
              net.LayerCount());
  auto profile = net.ProfileLayers(3);

  std::printf("%-24s %10s %12s\n", "layer", "edge ms", "activation");
  for (const auto& entry : profile) {
    std::printf("%-24s %10.3f %9zu B\n", entry.name.c_str(), entry.measured_ms,
                entry.output_bytes);
  }

  const std::size_t input_bytes = 3u * 96u * 96u * 4u;
  std::printf("\n%-12s %-8s %-34s\n", "WAN", "split", "latency breakdown");
  for (double mbps : {0.5, 5.0, 30.0, 200.0, 10000.0}) {
    nn::PartitionInput input;
    input.profile = profile;
    input.cloud_speedup = 4.0;
    input.bandwidth_mbps = mbps;
    input.rtt_ms = 15.0;
    input.input_bytes = input_bytes;
    const nn::PartitionPoint best = nn::ChooseSplit(input);
    const char* where = best.split == 0 ? "all-cloud"
                        : best.split == profile.size() ? "all-edge"
                                                       : "split";
    std::printf("%8.1f Mbps %2zu (%s)  edge %.2f + xfer %.2f + cloud %.2f = "
                "%.2f ms\n",
                mbps, best.split, where, best.edge_ms, best.transfer_ms,
                best.cloud_ms, best.total_ms);
  }

  // Correctness: a split forward pass equals the whole forward pass.
  nn::Tensor input(nn::Shape{3, 96, 96});
  for (std::size_t i = 0; i < input.size(); ++i) {
    input.values()[i] = float(i % 191) / 191.0f - 0.5f;
  }
  const nn::Tensor whole = net.Forward(input);
  const std::size_t cut = net.LayerCount() / 2;
  const nn::Tensor edge_half = net.ForwardRange(input, 0, cut);
  const nn::Tensor cloud_half = net.ForwardRange(edge_half, cut, net.LayerCount());
  bool identical = whole.size() == cloud_half.size();
  for (std::size_t i = 0; identical && i < whole.size(); ++i) {
    identical = whole.values()[i] == cloud_half.values()[i];
  }
  std::printf("\nsplit-at-%zu forward pass %s the monolithic result\n", cut,
              identical ? "exactly matches" : "DIFFERS FROM");
  return identical ? 0 : 1;
}
