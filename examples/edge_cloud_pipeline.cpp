// The live 3-tier pipeline (Figure 1) on real threads: camera streams a
// semantically encoded video, the edge seeks I-frames and transcodes them to
// stills, a rate-modelled WAN carries them to the cloud, the cloud runs the
// NN and fills the results database. Compares cloud-NN vs edge-NN tiers.
//
// Run:  ./edge_cloud_pipeline
#include <cstdio>

#include "codec/encoder.h"
#include "core/system.h"
#include "core/tuner.h"
#include "nn/classifier.h"
#include "synth/scene.h"

namespace {

using namespace sieve;

void Report(const char* label, const core::SystemReport& r,
            const core::ResultsDatabase& db) {
  std::printf("\n[%s]\n", label);
  std::printf("  streamed %zu frames, selected %zu I-frames, wrote %zu labels "
              "in %.2fs (%.0f fps)\n",
              r.frames_streamed, r.iframes_selected, r.labels_written,
              r.wall_seconds, r.fps);
  std::printf("  camera->edge %.2f MB, edge->cloud %.3f MB\n",
              double(r.camera_to_edge_bytes) / 1e6,
              double(r.edge_to_cloud_bytes) / 1e6);
  for (const auto& s : r.stages) {
    std::printf("  stage %-22s in=%-5zu out=%-5zu busy=%.3fs peakq=%zu\n",
                s.name.c_str(), s.in, s.out, s.busy_seconds, s.peak_queue);
  }
  std::printf("  results db rows: %zu\n", db.size());
}

}  // namespace

int main() {
  synth::SceneConfig config;
  config.width = 192;
  config.height = 144;
  config.num_frames = 450;
  config.seed = 77;
  config.classes = {synth::ObjectClass::kCar, synth::ObjectClass::kPerson};
  config.mean_gap_seconds = 2.0;
  config.min_gap_seconds = 1.0;
  config.mean_dwell_seconds = 2.5;

  std::printf("rendering feed and calibrating...\n");
  const synth::SyntheticVideo history = synth::GenerateScene(config);
  config.seed += 1;
  const synth::SyntheticVideo live = synth::GenerateScene(config);

  const core::TuningResult tuned = core::TuneEncoder(
      history.video, history.truth, core::TunerGrid::Extended());
  codec::EncoderParams params;
  params.keyframe.gop_size = tuned.best.gop_size;
  params.keyframe.scenecut = tuned.best.scenecut;
  auto encoded = codec::VideoEncoder(params).Encode(live.video);
  if (!encoded.ok()) return 1;

  nn::ClassifierParams cp;
  cp.input_size = 64;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(history.video.frames, history.truth, 4).ok()) return 1;

  // Placement 1: I-frame seeking at the edge, NN at the cloud, 30 Mbps WAN.
  {
    core::SystemConfig sys;
    sys.nn_tier = core::NnTier::kCloud;
    sys.nn_input_size = 64;
    sys.link_time_scale = 0.05;  // compress modelled link time 20x for demo
    core::SieveSystem system(sys, &classifier);
    core::ResultsDatabase db;
    auto report = system.Run(*encoded, db);
    if (!report.ok()) return 1;
    Report("I-frame edge + cloud NN (30 Mbps WAN)", *report, db);
  }

  // Placement 3: everything at the edge; nothing crosses the WAN.
  {
    core::SystemConfig sys;
    sys.nn_tier = core::NnTier::kEdge;
    sys.nn_input_size = 64;
    core::SieveSystem system(sys, &classifier);
    core::ResultsDatabase db;
    auto report = system.Run(*encoded, db);
    if (!report.ok()) return 1;
    Report("I-frame edge + edge NN (no WAN)", *report, db);
  }
  return 0;
}
