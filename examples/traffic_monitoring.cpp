// Traffic monitoring: the paper's motivating scenario on the Jackson-square
// preset — tune per camera, semantically encode a day's traffic, classify
// I-frames with the reference NN, store results, and answer queries such as
// "when were buses in the square?" without decoding the archive.
//
// Run:  ./traffic_monitoring
#include <cstdio>

#include "codec/decoder.h"
#include "codec/encoder.h"
#include "core/seeker.h"
#include "core/system.h"
#include "core/tuner.h"
#include "nn/classifier.h"
#include "synth/datasets.h"

int main() {
  using namespace sieve;

  // The Jackson-square preset, downscaled for a fast demo.
  synth::SceneConfig config =
      synth::MakeDatasetConfig(synth::DatasetId::kJacksonSquare, 900, 11);
  config.width = 300;
  config.height = 200;
  config.mean_gap_seconds = 3.0;
  config.mean_dwell_seconds = 3.0;

  std::printf("rendering training + live footage (%dx%d)...\n", config.width,
              config.height);
  const synth::SyntheticVideo history = synth::GenerateScene(config);
  config.seed += 999;
  const synth::SyntheticVideo live = synth::GenerateScene(config);

  // Per-camera tuning, stored in the operator's lookup table (Figure 1).
  const core::TuningResult tuned = core::TuneEncoder(
      history.video, history.truth, core::TunerGrid::Extended());
  core::CameraParameterTable table;
  codec::KeyframeParams keyframe;
  keyframe.gop_size = tuned.best.gop_size;
  keyframe.scenecut = tuned.best.scenecut;
  table.Set("jackson/cam-01", keyframe);
  std::printf("camera table:\n%s", table.Serialize().c_str());

  // Reference NN calibrated on the labelled history.
  nn::ClassifierParams cp;
  cp.input_size = 64;
  nn::FrameClassifier classifier(cp);
  if (!classifier.Fit(history.video.frames, history.truth, 4).ok()) return 1;
  std::printf("classifier: %zu label-set centroids, history accuracy %.1f%%\n",
              classifier.centroid_count(),
              classifier.Evaluate(history.video.frames, history.truth, 10) * 100);

  // Live: encode with tuned params, seek, classify I-frames only.
  codec::EncoderParams params;
  params.keyframe = *table.Get("jackson/cam-01");
  auto encoded = codec::VideoEncoder(params).Encode(live.video);
  if (!encoded.ok()) return 1;

  auto report = core::SeekIFrames(encoded->bytes);
  if (!report.ok()) return 1;
  core::ResultsDatabase db;
  for (const auto& record : report->iframes) {
    auto frame = codec::DecodeIntraFrameAt(encoded->bytes, record);
    if (!frame.ok()) continue;
    auto labels = classifier.Predict(*frame);
    if (labels.ok()) db.Insert(record.index, *labels);
  }
  std::printf("analyzed %zu of %zu frames (%.2f%%)\n", db.size(),
              encoded->records.size(),
              100.0 * double(db.size()) / double(encoded->records.size()));

  // Queries against the results database.
  for (auto cls : {synth::ObjectClass::kCar, synth::ObjectClass::kBus,
                   synth::ObjectClass::kTruck}) {
    const auto ranges = db.FindObject(cls, encoded->records.size());
    std::printf("%-6s seen in %zu interval(s):", synth::ObjectClassName(cls),
                ranges.size());
    for (const auto& [a, b] : ranges) {
      std::printf(" [%.1fs..%.1fs]", double(a) / config.fps,
                  double(b) / config.fps);
    }
    std::printf("\n");
  }

  // Accuracy of the propagated per-frame labels vs ground truth.
  std::size_t correct = 0;
  for (std::size_t f = 0; f < live.truth.frame_count(); ++f) {
    if (db.LabelAt(f) == live.truth.label(f)) ++correct;
  }
  std::printf("propagated per-frame label accuracy: %.1f%%\n",
              100.0 * double(correct) / double(live.truth.frame_count()));
  return 0;
}
